"""Cost model for enclave I/O — the substrate behind Figure 7 (§5.3).

SGX enclave threads cannot issue system calls; each ``send()``/``recv()``
either *exits* the enclave (synchronous ocall, paying a boundary-crossing
penalty twice) or enqueues a request for an outside thread (asynchronous).
Either way the paper observes that for network-I/O-heavy middleboxes the
crossing cost is dominated by interrupt handling and (when enabled) crypto.

This module models a middlebox forwarding loop: for each buffer it performs
one ``recv`` and one ``send``, optionally an AEAD decrypt + re-encrypt, and
absorbs NIC interrupts at a rate proportional to packet arrival. The default
constants are calibrated so that the no-encryption/no-enclave configuration
saturates around 10 Gbps and encryption plateaus around 7 Gbps, matching the
shape of Figure 7. They are explicit parameters, not hidden magic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SgxCostModel", "ThroughputResult"]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a modelled forwarding run."""

    buffer_size: int
    enclave: bool
    encryption: bool
    throughput_gbps: float
    cpu_breakdown: dict[str, float]


@dataclass(frozen=True)
class SgxCostModel:
    """Per-operation CPU costs for the forwarding loop (seconds).

    Attributes:
        syscall_cost: base cost of one send()/recv() system call.
        enclave_crossing_cost: extra cost per enclave exit+re-entry (a
            synchronous ocall crosses twice: out and back in).
        interrupt_cost: CPU time to service one NIC interrupt.
        interrupts_per_packet: interrupts raised per MTU-sized packet
            (coalescing makes this < 1).
        crypto_cost_per_byte: AEAD decrypt+re-encrypt cost per payload byte.
        crypto_cost_per_record: fixed per-record AEAD cost (nonce/tag setup).
        copy_cost_per_byte: data movement in/out of protected memory.
        mtu: packet size the NIC delivers.
        async_syscalls: if True, syscalls are queued to an outside thread and
            the enclave-crossing term is dropped (SCONE-style); the paper's
            point is that this barely matters for I/O-heavy workloads.
    """

    syscall_cost: float = 0.25e-6
    # Marginal cost of an enclave exit+re-entry. Deliberately small: the
    # paper's explanation for Figure 7 is that NIC interrupts force enclave
    # exits anyway, so a send/recv crossing adds little *additional* cost on
    # top of the interrupt handling it coincides with.
    enclave_crossing_cost: float = 0.10e-6
    interrupt_cost: float = 1.0e-6
    interrupts_per_packet: float = 1.0
    crypto_cost_per_byte: float = 2.1e-10
    crypto_cost_per_record: float = 0.2e-6
    copy_cost_per_byte: float = 1.0e-11
    mtu: int = 1500
    async_syscalls: bool = False

    def time_per_buffer(
        self, buffer_size: int, enclave: bool, encryption: bool
    ) -> dict[str, float]:
        """CPU-time breakdown to receive, process, and forward one buffer."""
        syscalls = 2.0  # one recv + one send
        packets = max(1.0, buffer_size / self.mtu)
        breakdown = {
            "syscalls": syscalls * self.syscall_cost,
            "interrupts": packets * self.interrupts_per_packet * self.interrupt_cost,
            "copies": 2 * buffer_size * self.copy_cost_per_byte,
            "enclave_crossings": 0.0,
            "crypto": 0.0,
        }
        if enclave and not self.async_syscalls:
            breakdown["enclave_crossings"] = syscalls * self.enclave_crossing_cost
        if encryption:
            breakdown["crypto"] = (
                2 * self.crypto_cost_per_record
                + 2 * buffer_size * self.crypto_cost_per_byte
            )
        return breakdown

    def throughput(
        self, buffer_size: int, enclave: bool, encryption: bool
    ) -> ThroughputResult:
        """Steady-state forwarding throughput for one saturated core."""
        breakdown = self.time_per_buffer(buffer_size, enclave, encryption)
        total = sum(breakdown.values())
        bits = buffer_size * 8
        gbps = bits / total / 1e9
        return ThroughputResult(
            buffer_size=buffer_size,
            enclave=enclave,
            encryption=encryption,
            throughput_gbps=gbps,
            cpu_breakdown=breakdown,
        )
