"""Figure 5 — Handshake CPU Microbenchmarks.

Per-party CPU time for a single handshake across the paper's seven
configurations. Absolute times differ (pure Python vs OpenSSL); the shape
claims under test:

  * with no middlebox, TLS and mbTLS cost about the same;
  * the mbTLS middlebox is CHEAPER than split TLS (one handshake, not two);
  * client-side middleboxes do not increase server load;
  * server load grows roughly linearly with server-side middleboxes, each
    adding about one client-role handshake (a fraction of the baseline).
"""

from conftest import emit

from repro.bench.chains import measure_matrix
from repro.bench.cpu import measure_all
from repro.bench.tables import render_table

TRIALS = 5


def test_fig5_handshake_cpu(benchmark):
    results = benchmark.pedantic(
        lambda: measure_all(trials=TRIALS), rounds=1, iterations=1
    )
    by_name = {result.configuration: result for result in results}

    rows = [
        [
            result.configuration,
            f"{result.client * 1000:.2f}",
            f"{result.middlebox * 1000:.2f}",
            f"{result.server * 1000:.2f}",
        ]
        for result in results
    ]
    emit(
        render_table(
            f"Figure 5 — Handshake CPU time per party (ms, median of {TRIALS})",
            ["configuration", "client", "middlebox", "server"],
            rows,
        )
    )

    tls = by_name["tls"]
    mbtls0 = by_name["mbtls-0"]
    split = by_name["split-1"]
    mbtls1c = by_name["mbtls-1c"]
    mbtls1s = by_name["mbtls-1s"]
    mbtls2s = by_name["mbtls-2s"]
    mbtls3s = by_name["mbtls-3s"]

    # Shape 1: mbTLS ≈ TLS without middleboxes (within 40%).
    assert abs(mbtls0.server - tls.server) / tls.server < 0.4
    assert abs(mbtls0.client - tls.client) / tls.client < 0.4

    # Shape 2: the mbTLS middlebox is cheaper than the split-TLS middlebox.
    assert mbtls1c.middlebox < split.middlebox

    # Shape 3: client-side middleboxes don't load the server (within 35%).
    assert abs(mbtls1c.server - mbtls0.server) / mbtls0.server < 0.35

    # Shape 4: server cost grows monotonically with server-side middleboxes,
    # each adding one client-role handshake — a fraction of the baseline
    # server handshake (the paper measured ~20%; see EXPERIMENTS.md).
    assert mbtls1s.server < mbtls2s.server < mbtls3s.server
    per_mbox = (mbtls3s.server - mbtls1s.server) / 2
    assert 0.08 * mbtls0.server < per_mbox < 0.80 * mbtls0.server


def test_fig5_companion_sansio_chain_matrix(benchmark):
    """Companion table on the sans-IO Connection plane: handshake CPU and
    flight count for mdTLS against mbTLS and the comparison baselines.

    Shape claims: mdTLS's delegation certificates and proxy signatures ride
    the existing four flights (no extra round trips, unlike split TLS's two
    handshakes in sequence), and its handshake CPU stays within the same
    order of magnitude as mbTLS — the warrant verifies replace the
    secondary-handshake work rather than stacking on top of it.
    """
    results = benchmark.pedantic(measure_matrix, rounds=1, iterations=1)
    by_case = {result.case: result for result in results}

    emit(
        render_table(
            "Figure 5 companion — sans-IO chain handshake cost",
            ["implementation", "handshake CPU (ms)", "flights", "chain MB/s"],
            [
                [
                    result.case,
                    f"{result.handshake_cpu_seconds * 1000:.2f}",
                    str(result.flights),
                    f"{result.throughput_bytes_per_second / 1e6:.2f}",
                ]
                for result in results
            ],
        )
    )

    # mdTLS preserves the four-flight TLS handshake, middlebox or not.
    assert by_case["tls"].flights == 4
    assert by_case["mdtls"].flights == 4
    assert by_case["mdtls_middlebox"].flights == 4
    assert by_case["mdtls"].flights == by_case["mbtls"].flights

    # Handshake CPU stays within an order of magnitude of mbTLS (lenient:
    # pure-Python RSA dominates and scheduler noise is real).
    assert (
        by_case["mdtls"].handshake_cpu_seconds
        < 10 * by_case["mbtls"].handshake_cpu_seconds
    )
    assert (
        by_case["mdtls_middlebox"].handshake_cpu_seconds
        < 10 * by_case["mbtls_middlebox"].handshake_cpu_seconds
    )
