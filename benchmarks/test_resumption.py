"""§3.5 session resumption: full vs abbreviated mbTLS sessions.

The paper's claim: "each sub-handshake ... is replaced with a standard
abbreviated handshake", cutting a round trip from the handshake and the
asymmetric crypto from every party — with no fresh attestation needed.
This bench measures both effects on a client - middlebox - server path.
"""

from conftest import emit

from repro.bench.tables import render_table
from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    SessionEstablished,
)
from repro.core.drivers import MiddleboxService, open_mbtls
from repro.core.resumption import MiddleboxSessionStore
from repro.crypto.drbg import HmacDrbg
from repro.netsim.driver import CpuMeter, EngineDriver
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSServerEngine
from repro.tls.events import ApplicationData
from repro.tls.session import ClientSessionStore, ServerSessionCache


def _run_pair(bench_pki, seed: bytes):
    """Run two sessions sharing resumption state; return per-run stats."""
    rng = HmacDrbg(seed)
    client_sessions = ClientSessionStore()
    middlebox_sessions = MiddleboxSessionStore()
    mbox_cache = ServerSessionCache()
    server_cache = ServerSessionCache()
    stats = []

    for run in range(2):
        run_rng = rng.fork(b"run%d" % run)
        network = Network()
        for name in ("client", "mbox", "server"):
            network.add_host(name)
        network.add_link("client", "mbox", 0.010)
        network.add_link("mbox", "server", 0.030)
        meters = {name: CpuMeter(name) for name in ("client", "mbox", "server")}

        MiddleboxService(
            network.host("mbox"),
            lambda: MiddleboxConfig(
                name="mbox",
                tls=TLSConfig(
                    rng=run_rng.fork(b"mb"),
                    credential=bench_pki.credential("mbox"),
                    session_cache=mbox_cache,
                ),
                role=MiddleboxRole.CLIENT_SIDE,
            ),
            meter=meters["mbox"],
        )

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(
                    rng=run_rng.fork(b"srv"),
                    credential=bench_pki.credential("server"),
                    session_cache=server_cache,
                )
            )
            driver = EngineDriver(engine, socket, meter=meters["server"])
            driver.on_event = (
                lambda event: driver.send_application_data(b"pong")
                if isinstance(event, ApplicationData)
                else None
            )
            driver.start()

        network.host("server").listen(443, accept)

        outcome = {}

        def on_event(event):
            if isinstance(event, SessionEstablished):
                outcome["handshake"] = network.sim.now
                outcome["resumed"] = event.resumed
                driver.send_application_data(b"ping")
            elif isinstance(event, ApplicationData):
                outcome["done"] = network.sim.now

        engine, driver = open_mbtls(
            network.host("client"),
            "server",
            MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=run_rng.fork(b"cli"),
                    trust_store=bench_pki.trust,
                    server_name="server",
                    session_store=client_sessions,
                ),
                middlebox_trust_store=bench_pki.trust,
                middlebox_session_store=middlebox_sessions,
            ),
            on_event=on_event,
            meter=meters["client"],
        )
        network.sim.run()
        stats.append(
            {
                "resumed": outcome["resumed"],
                "handshake_ms": outcome["handshake"] * 1000,
                "client_cpu_ms": meters["client"].seconds * 1000,
                "server_cpu_ms": meters["server"].seconds * 1000,
                "mbox_cpu_ms": meters["mbox"].seconds * 1000,
            }
        )
    return stats


def test_mbtls_resumption_savings(benchmark, bench_pki):
    stats = benchmark.pedantic(
        lambda: _run_pair(bench_pki, b"resumption-bench"), rounds=1, iterations=1
    )
    full, resumed = stats
    emit(
        render_table(
            "§3.5 — full vs resumed mbTLS session (1 client-side middlebox)",
            ["run", "handshake ms", "client CPU ms", "mbox CPU ms", "server CPU ms"],
            [
                ["full", f"{full['handshake_ms']:.0f}", f"{full['client_cpu_ms']:.2f}",
                 f"{full['mbox_cpu_ms']:.2f}", f"{full['server_cpu_ms']:.2f}"],
                ["resumed", f"{resumed['handshake_ms']:.0f}",
                 f"{resumed['client_cpu_ms']:.2f}", f"{resumed['mbox_cpu_ms']:.2f}",
                 f"{resumed['server_cpu_ms']:.2f}"],
            ],
        )
    )
    assert not full["resumed"] and resumed["resumed"]
    # One full round trip saved on the handshake.
    assert resumed["handshake_ms"] < full["handshake_ms"] - 50
    # The asymmetric crypto disappears from every party.
    assert resumed["client_cpu_ms"] < 0.6 * full["client_cpu_ms"]
    assert resumed["mbox_cpu_ms"] < 0.6 * full["mbox_cpu_ms"]
    assert resumed["server_cpu_ms"] < 0.6 * full["server_cpu_ms"]
