"""§2.2's design space, quantified: what each protocol can and cannot do,
plus the per-record middlebox processing cost of each mechanism.

The paper's Table-free §2.2 comparison (split TLS / mcTLS / BlindBox /
mbTLS) is qualitative; this bench executes one capability probe per cell
and measures record-processing cost for the mechanisms that differ:

* mbTLS: AEAD decrypt + re-encrypt per hop (arbitrary computation);
* mcTLS read-only: AEAD decrypt + MAC verify (no write capability);
* BlindBox: encrypted-token matching (pattern matching only).
"""

import time

from conftest import emit

from repro.baselines.blindbox import BlindBoxDetector, RuleAuthority, TokenStream
from repro.baselines.mctls import ContextPermission, McTLSSession
from repro.bench.tables import render_table
from repro.core.keys import generate_hop_keys, states_from_hop_keys
from repro.crypto.drbg import HmacDrbg
from repro.errors import IntegrityError, PolicyError
from repro.tls.ciphersuites import suite_by_code
from repro.wire.records import ContentType

RECORD_SIZE = 1400
RECORDS = 30


def _mbtls_cost(rng):
    suite = suite_by_code(0xC030)
    keys = generate_hop_keys(suite, rng)
    read_state, _ = states_from_hop_keys(suite, keys)
    out_keys = generate_hop_keys(suite, rng)
    write_state, _ = states_from_hop_keys(suite, out_keys)
    sender, _ = states_from_hop_keys(suite, keys)
    records = [
        sender.protect(ContentType.APPLICATION_DATA, bytes([i % 256]) * RECORD_SIZE)
        for i in range(RECORDS)
    ]
    start = time.perf_counter()
    for record in records:
        plaintext = read_state.unprotect(record)
        write_state.protect(ContentType.APPLICATION_DATA, plaintext)
    return (time.perf_counter() - start) / RECORDS


def _mctls_cost(rng):
    session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1])
    endpoint = session.endpoint_party()
    middlebox = session.middlebox_party({1: ContextPermission.READ})
    records = [endpoint.seal(1, bytes([i % 256]) * RECORD_SIZE) for i in range(RECORDS)]
    start = time.perf_counter()
    for record in records:
        middlebox.open(1, record)
    return (time.perf_counter() - start) / RECORDS


def _blindbox_cost(rng):
    key = rng.random_bytes(32)
    authority = RuleAuthority(key)
    detector = BlindBoxDetector(
        [authority.encrypt_rule(f"rule{i}", b"PATTERN-%02d" % i) for i in range(8)]
    )
    stream = TokenStream(key)
    chunks = [stream.tokenize(bytes([i % 256]) * RECORD_SIZE) for i in range(RECORDS)]
    start = time.perf_counter()
    for tokens in chunks:
        detector.inspect(tokens)
    return (time.perf_counter() - start) / RECORDS


def test_design_space_capabilities_and_cost(benchmark):
    rng = HmacDrbg(b"design-space")

    def run():
        return {
            "mbtls": _mbtls_cost(rng.fork(b"mb")),
            "mctls-ro": _mctls_cost(rng.fork(b"mc")),
            "blindbox": _blindbox_cost(rng.fork(b"bb")),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)

    # Capability probes --------------------------------------------------
    # mcTLS read-only middlebox cannot produce an endpoint-authenticated write.
    session = McTLSSession(rng.fork(b"c2"), rng.fork(b"s2"), context_ids=[1])
    endpoint = session.endpoint_party()
    read_only = session.middlebox_party({1: ContextPermission.READ})
    mctls_can_write = True
    try:
        read_only.seal(1, b"attempted write")
    except PolicyError:
        mctls_can_write = False
    if mctls_can_write:
        # Even with writer keys, endpoint MAC verification catches it.
        forged = session.middlebox_party({1: ContextPermission.WRITE}).seal(1, b"x")
        try:
            endpoint.open(1, forged, verify_endpoint_mac=True)
        except IntegrityError:
            mctls_can_write = False

    # BlindBox cannot transform; mbTLS can (the middlebox data plane).
    rows = [
        ["split TLS", "full (terminates TLS)", "arbitrary", "no server auth for client"],
        ["mcTLS (read-only ctx)", "read per context",
         "none (writes detected)" if not mctls_can_write else "BROKEN",
         f"{costs['mctls-ro']*1e6:.0f} us/record"],
        ["BlindBox", "match results only", "pattern matching only",
         f"{costs['blindbox']*1e6:.0f} us/record"],
        ["mbTLS", "full (inside enclave)", "arbitrary",
         f"{costs['mbtls']*1e6:.0f} us/record"],
    ]
    emit(
        render_table(
            "§2.2 design space — capabilities and middlebox record cost",
            ["protocol", "middlebox data access", "computation", "cost / note"],
            rows,
        )
    )

    assert not mctls_can_write
    # All three mechanisms process a record in finite, same-order-of-
    # magnitude time in this stack; the *capability* differences are the
    # paper's point, asserted above and in tests/test_baselines.py.
    for name, cost in costs.items():
        assert cost < 0.5, (name, cost)
