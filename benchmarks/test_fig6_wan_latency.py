"""Figure 6 — mbTLS vs TLS latency across inter-datacenter paths.

Fetch a small object over every (client, mbox, server) region permutation,
comparing plain TLS (the middlebox host is a pure packet relay — the
worst-case baseline the paper uses) against mbTLS with a discovered
client-side middlebox. The claim: mbTLS keeps the handshake's four-flight
shape, so latency inflation is negligible (the paper measured +0.7% mean,
+1.2% worst case).
"""

from conftest import emit

from repro.bench.scenarios import run_fetch
from repro.bench.tables import render_table
from repro.bench.topologies import build_wan, path_permutations
from repro.core.config import MiddleboxRole


def _run_all(bench_pki, bench_rng):
    rows = []
    deltas = []
    for client_region, mbox_region, server_region in path_permutations():
        label = f"{client_region}-{mbox_region}-{server_region}"
        tls = run_fetch(
            build_wan(client_region, mbox_region, server_region),
            bench_pki,
            bench_rng.fork(b"tls-" + label.encode()),
            protocol="tls",
        )
        mbtls = run_fetch(
            build_wan(client_region, mbox_region, server_region),
            bench_pki,
            bench_rng.fork(b"mb-" + label.encode()),
            protocol="mbtls",
            middlebox_hosts=[("mbox", MiddleboxRole.CLIENT_SIDE)],
            server_is_mbtls=False,
        )
        assert tls.ok and mbtls.ok
        assert len(mbtls.client_middleboxes) == 1
        delta = (mbtls.handshake_seconds - tls.handshake_seconds) / tls.handshake_seconds
        deltas.append(delta)
        rows.append(
            [
                label,
                f"{tls.handshake_seconds * 1000:.0f}",
                f"{mbtls.handshake_seconds * 1000:.0f}",
                f"{tls.total_seconds * 1000:.0f}",
                f"{mbtls.total_seconds * 1000:.0f}",
                f"{delta * 100:+.1f}%",
            ]
        )
    return rows, deltas


def test_fig6_wan_latency(benchmark, bench_pki, bench_rng):
    rows, deltas = benchmark.pedantic(
        lambda: _run_all(bench_pki, bench_rng), rounds=1, iterations=1
    )
    emit(
        render_table(
            "Figure 6 — handshake/total latency across 12 WAN paths (ms)",
            [
                "path (client-mbox-server)",
                "TLS hs",
                "mbTLS hs",
                "TLS total",
                "mbTLS total",
                "hs delta",
            ],
            rows,
        )
    )
    mean_delta = sum(deltas) / len(deltas)
    worst = max(deltas)
    emit(f"mean handshake delta: {mean_delta*100:+.2f}%   worst: {worst*100:+.2f}%")
    # The paper's claim is "no meaningful inflation" (they measured +0.7%
    # mean, +1.2% worst). Our middleboxes optimistically split TCP at SYN
    # time, which SAVES part of the connection-setup RTT on these paths, so
    # the reproduction comes out slightly *faster* than the relay baseline
    # (see EXPERIMENTS.md). Assert the claim itself — no inflation — plus a
    # sanity floor on the speedup.
    assert mean_delta < 0.02, "mbTLS must not inflate handshake latency"
    assert worst < 0.05
    assert mean_delta > -0.30, "speedup beyond split-TCP savings is a bug"


def test_fig6_companion_mdtls_flight_parity(benchmark):
    """Figure 6's latency claim rests on flight count: a handshake that
    adds no flights adds (at zero CPU) no WAN latency. mdTLS's proxy
    signatures piggyback on the four TLS flights, so its WAN story matches
    mbTLS's — verify flight parity and that the data plane still carries
    full throughput through a middlebox chain.
    """
    from repro.bench.chains import measure_matrix

    results = benchmark.pedantic(
        lambda: measure_matrix(
            cases=("tls", "mbtls", "mbtls_middlebox", "mdtls", "mdtls_middlebox")
        ),
        rounds=1,
        iterations=1,
    )
    by_case = {result.case: result for result in results}
    emit(
        "flight counts: "
        + "  ".join(f"{r.case}={r.flights}" for r in results)
    )
    # No added flights relative to TLS, with or without a middlebox.
    for case in ("mbtls", "mdtls", "mdtls_middlebox"):
        assert by_case[case].flights == by_case["tls"].flights, case
    # The per-hop re-encrypting data plane keeps real throughput: within
    # an order of magnitude of mbTLS's middlebox chain.
    assert (
        by_case["mdtls_middlebox"].throughput_bytes_per_second
        > 0.1 * by_case["mbtls_middlebox"].throughput_bytes_per_second
    )
