"""Table 1 — Threats and Defenses.

Regenerates the paper's threat/defense matrix by executing one concrete
attack per row against TLS, mbTLS, and the baselines, and prints which were
defended. The paper's table is qualitative; the reproduction asserts the
same qualitative outcomes (mbTLS defends everything in its threat model;
the shared-key design and enclave-less outsourcing do not).
"""

from conftest import emit

from repro.bench.tables import render_table
from repro.bench.threats import run_all_threats, wire_secrecy_mbtls

# Rows where "defended" is the paper's claim, keyed by (threat, protocol).
EXPECTED_DEFENDED = {
    ("wire data read by third party", "TLS"): True,
    ("wire data read by third party", "mbTLS"): True,
    ("session keys read from middlebox memory by MIP", "mbTLS+SGX"): True,
    ("session keys read from middlebox memory by MIP", "mbTLS w/o enclave"): False,
    ("modification detectable by comparing hops", "mbTLS"): True,
    ("modification detectable by comparing hops", "shared-key baseline"): False,
    ("record skips the middlebox (path integrity)", "mbTLS"): True,
    ("record skips the middlebox (path integrity)", "shared-key baseline"): False,
    ("records modified/injected on the wire", "mbTLS"): True,
    ("record replayed on its own hop", "mbTLS"): True,
    ("key established with impostor server", "TLS/mbTLS"): True,
    ("middlebox operated by wrong MSP", "mbTLS"): True,
    ("wrong middlebox software (code identity)", "mbTLS"): True,
    ("old sessions decrypted after key compromise", "TLS/mbTLS"): True,
}


def test_table1_threat_matrix(benchmark):
    outcomes = benchmark.pedantic(run_all_threats, rounds=1, iterations=1)
    rows = [
        [
            outcome.threat,
            outcome.protocol,
            "DEFENDED" if outcome.defended else "VULNERABLE",
            outcome.mechanism,
        ]
        for outcome in outcomes
    ]
    emit(
        render_table(
            "Table 1 — Threats and Defenses (executed attacks)",
            ["threat", "protocol", "outcome", "mechanism"],
            rows,
        )
    )
    for outcome in outcomes:
        expected = EXPECTED_DEFENDED[(outcome.threat, outcome.protocol)]
        assert outcome.defended == expected, (outcome.threat, outcome.protocol)


def test_single_threat_scenario_cost(benchmark):
    """Micro-benchmark: cost of one full adversarial scenario run."""
    outcome = benchmark(wire_secrecy_mbtls)
    assert outcome.defended
