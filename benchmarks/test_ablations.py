"""Ablations on mbTLS's design choices (DESIGN.md §5).

(a) Unique per-hop keys vs a shared session key: what breaks without them
    (change secrecy P1C and path integrity P4).
(b) Middlebox count sweep: handshake latency stays flat while server CPU
    grows — the property that makes server-side middleboxes affordable.
(c) Filter-strictness counterfactual: how Table 2 would look in a world
    where networks killed unknown TLS record types.
"""


from conftest import emit

from repro.bench.population import generate_population
from repro.bench.scenarios import build_chain_network, run_fetch
from repro.bench.tables import render_table
from repro.bench.threats import change_secrecy, path_skip
from repro.bench.viability import run_population
from repro.core.config import MiddleboxRole
from repro.crypto.drbg import HmacDrbg
from repro.netsim.driver import CpuMeter


def test_ablation_per_hop_keys(benchmark):
    """Remove unique per-hop keys (the shared-key baseline) and both P1C
    and P4 fall; with them, both hold."""

    def run():
        return {
            ("per-hop", "change-secrecy"): change_secrecy("mbtls").defended,
            ("shared", "change-secrecy"): change_secrecy("shared").defended,
            ("per-hop", "path-integrity"): path_skip("mbtls").defended,
            ("shared", "path-integrity"): path_skip("shared").defended,
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [keys, prop, "holds" if defended else "BROKEN"]
        for (keys, prop), defended in outcomes.items()
    ]
    emit(render_table("Ablation (a) — per-hop keys", ["keying", "property", "result"], rows))
    assert outcomes[("per-hop", "change-secrecy")]
    assert not outcomes[("shared", "change-secrecy")]
    assert outcomes[("per-hop", "path-integrity")]
    assert not outcomes[("shared", "path-integrity")]


def test_ablation_middlebox_count(benchmark, bench_pki, bench_rng):
    """Sweep 0-3 server-side middleboxes: latency ~flat, server CPU grows."""

    def run():
        measurements = []
        for count in range(4):
            mbox_hosts = [f"mb{i}" for i in range(count)]
            names = ["client"] + mbox_hosts + ["server"]
            # A short server-side tail: middleboxes near the server.
            latencies = [0.040] + [0.002] * count
            network = build_chain_network(latencies, names)
            meters = {name: CpuMeter(name) for name in names}
            result = run_fetch(
                network,
                bench_pki,
                bench_rng.fork(b"count-%d" % count),
                protocol="mbtls",
                middlebox_hosts=[(host, MiddleboxRole.SERVER_SIDE) for host in mbox_hosts],
                meters=meters,
            )
            assert result.ok
            measurements.append(
                (
                    count,
                    result.handshake_seconds,
                    meters["server"].seconds,
                )
            )
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [count, f"{handshake*1000:.1f} ms", f"{cpu*1000:.2f} ms"]
        for count, handshake, cpu in measurements
    ]
    emit(
        render_table(
            "Ablation (b) — server-side middlebox count sweep",
            ["middleboxes", "handshake latency", "server CPU"],
            rows,
        )
    )
    base_latency = measurements[0][1]
    for count, handshake, _cpu in measurements:
        # Latency stays within 25% of the no-middlebox baseline: the
        # secondary handshakes ride inside the primary's flights.
        assert handshake < base_latency * 1.25, (count, handshake, base_latency)
    # Server CPU strictly grows with middlebox count.
    cpus = [cpu for _, _, cpu in measurements]
    assert cpus[0] < cpus[-1]


def test_ablation_strict_filters(benchmark, bench_pki):
    """Counterfactual Table 2: networks that reset on unknown ContentTypes
    would break mbTLS discovery — quantifying how much the observed
    payload-agnostic behaviour of deployed filters matters."""
    rng = HmacDrbg(b"strict-filters")

    def run():
        results = {}
        for strict_fraction in (0.0, 0.5, 1.0):
            sites = generate_population(
                rng.fork(b"pop-%d" % int(strict_fraction * 100)),
                counts={"Enterprise": 6, "Residential": 10, "Hosting": 10},
                strict_fraction=strict_fraction,
            )
            site_results, _ = run_population(
                sites, bench_pki, rng.fork(b"run-%d" % int(strict_fraction * 100))
            )
            ok = sum(1 for result in site_results if result.data_ok)
            results[strict_fraction] = (ok, len(sites))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{fraction:.0%} strict", f"{ok}/{total}"]
        for fraction, (ok, total) in sorted(results.items())
    ]
    emit(
        render_table(
            "Ablation (c) — viability under counterfactual strict filters",
            ["strict-filter share", "working sessions"],
            rows,
        )
    )
    ok_observed, total = results[0.0]
    assert ok_observed == total  # the observed world: everything works
    ok_strict, total = results[1.0]
    assert ok_strict == 0  # fully strict world: discovery always breaks
    ok_half, total = results[0.5]
    assert 0 < ok_half < total
