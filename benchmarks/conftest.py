"""Benchmark fixtures: one shared PKI, deterministic RNG, report printing."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import Pki
from repro.crypto.drbg import HmacDrbg


@pytest.fixture(scope="session")
def bench_rng() -> HmacDrbg:
    return HmacDrbg(b"benchmarks")


@pytest.fixture(scope="session")
def bench_pki(bench_rng) -> Pki:
    return Pki(rng=bench_rng.fork(b"pki"))


@pytest.fixture
def rng(request) -> HmacDrbg:
    return HmacDrbg(request.node.nodeid.encode())


def emit(report: str) -> None:
    """Print a experiment report so it lands in the benchmark log."""
    print("\n" + report + "\n")
