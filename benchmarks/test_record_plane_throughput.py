"""Microbenchmark: the coalesced RecordPlane vs the legacy drain path.

Before the sans-IO refactor every engine built one ``bytes`` object per
record (``Record.encode()``), appended it to a list, and joined the list on
every drain — three full copies of each payload (eager fragmentation slice,
encode, join) before the transport saw it. The :class:`repro.io.RecordPlane`
writes records directly into one persistent ``bytearray`` (memoryview
fragmentation, in-place header encode) and pays a single ``bytes()`` copy
per drained flight.

This bench measures both paths over identical workloads and writes
``BENCH_record_plane.json`` with records/sec and bytes-copied counts; the
assertion pins the structural win (strictly fewer bytes copied).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.io.record_plane import RecordPlane
from repro.wire.records import ContentType, MAX_FRAGMENT, Record

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_record_plane.json"

PAYLOAD = bytes(range(256)) * 256  # 64 KiB app write -> a 4-record flight
FLIGHTS = 200


def _legacy_drain(data: bytes) -> tuple[bytes, int]:
    """The pre-refactor path: eager slices, per-record encode, join on drain.

    Returns (wire bytes, payload bytes copied along the way).
    """
    copied = 0
    records: list[bytes] = []
    for offset in range(0, len(data), MAX_FRAGMENT):
        chunk = data[offset : offset + MAX_FRAGMENT]  # eager slice: copy 1
        copied += len(chunk)
        encoded = Record(ContentType.APPLICATION_DATA, chunk).encode()  # copy 2
        copied += len(encoded)
        records.append(encoded)
    wire = b"".join(records)  # copy 3
    copied += len(wire)
    return wire, copied


def _plane_drain(plane: RecordPlane, data: bytes) -> tuple[bytes, int]:
    """The coalesced path: memoryview fragmentation, one copy per flight."""
    before = len(data)  # payload lands in the outbox bytearray: copy 1
    plane.queue_application_data(data)
    wire = plane.data_to_send()  # bytes(outbox): copy 2
    return wire, before + len(wire)


def _throughput(drain, flights: int) -> tuple[float, int, int]:
    """Runs ``drain`` per flight; returns (records/sec, records, bytes copied)."""
    records = 0
    copied = 0
    start = time.perf_counter()
    for _ in range(flights):
        wire, flight_copied = drain()
        copied += flight_copied
        records += -(-len(PAYLOAD) // MAX_FRAGMENT)
        assert wire  # keep the drain honest
    elapsed = time.perf_counter() - start
    return records / elapsed, records, copied


def test_record_plane_throughput():
    legacy_rate, legacy_records, legacy_copied = _throughput(
        lambda: _legacy_drain(PAYLOAD), FLIGHTS
    )

    plane = RecordPlane()
    plane_rate, plane_records, plane_copied = _throughput(
        lambda: _plane_drain(plane, PAYLOAD), FLIGHTS
    )

    # Wire equality: the coalesced path is a pure representation change.
    assert _legacy_drain(PAYLOAD)[0] == _plane_drain(RecordPlane(), PAYLOAD)[0]
    assert plane_records == legacy_records
    assert plane.flights_drained == FLIGHTS

    report = {
        "payload_bytes": len(PAYLOAD),
        "flights": FLIGHTS,
        "records_per_flight": legacy_records // FLIGHTS,
        "legacy": {
            "records_per_sec": round(legacy_rate),
            "bytes_copied": legacy_copied,
        },
        "record_plane": {
            "records_per_sec": round(plane_rate),
            "bytes_copied": plane_copied,
        },
        "bytes_copied_ratio": round(plane_copied / legacy_copied, 3),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    emit(
        "Record plane throughput\n"
        f"  legacy drain : {report['legacy']['records_per_sec']:>12,} rec/s  "
        f"{legacy_copied:,} bytes copied\n"
        f"  record plane : {report['record_plane']['records_per_sec']:>12,} rec/s  "
        f"{plane_copied:,} bytes copied\n"
        f"  copy ratio   : {report['bytes_copied_ratio']}"
    )

    # The structural claim of the refactor: strictly fewer byte copies.
    assert plane_copied < legacy_copied
