"""Microbenchmark: the coalesced RecordPlane vs the legacy drain path.

Before the sans-IO refactor every engine built one ``bytes`` object per
record (``Record.encode()``), appended it to a list, and joined the list on
every drain — three full copies of each payload (eager fragmentation slice,
encode, join) before the transport saw it. The :class:`repro.io.RecordPlane`
writes records directly into one persistent ``bytearray`` (memoryview
fragmentation, in-place header encode) and pays a single ``bytes()`` copy
per drained flight.

The measurement itself lives in :mod:`repro.bench.record_plane` (shared
with ``python -m repro bench``); this test runs it, writes
``BENCH_record_plane.json``, and pins the structural win (strictly fewer
bytes copied) plus wire equality of the two paths.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import emit

from repro.bench.record_plane import PAYLOAD_BYTES, legacy_drain, plane_drain, run
from repro.io.record_plane import RecordPlane

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_record_plane.json"


def test_record_plane_throughput():
    report = run()

    # Wire equality: the coalesced path is a pure representation change.
    payload = bytes(range(256)) * (PAYLOAD_BYTES // 256)
    assert legacy_drain(payload)[0] == plane_drain(RecordPlane(), payload)[0]

    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    legacy = report["legacy"]
    plane = report["record_plane"]
    receive = report["receive"]
    emit(
        "Record plane throughput\n"
        f"  legacy drain : {legacy['records_per_sec']:>12,} rec/s  "
        f"{legacy['bytes_copied']:,} bytes copied\n"
        f"  record plane : {plane['records_per_sec']:>12,} rec/s  "
        f"{plane['bytes_copied']:,} bytes copied\n"
        f"  copy ratio   : {report['bytes_copied_ratio']}\n"
        "Receive path (sealed AES-128-GCM flights)\n"
        f"  legacy parse : {receive['legacy']['records_per_sec']:>12,} rec/s  "
        f"{receive['legacy']['bytes_copied']:,} bytes copied\n"
        f"  zero-copy    : {receive['record_plane']['records_per_sec']:>12,} rec/s  "
        f"{receive['record_plane']['bytes_copied']:,} bytes copied\n"
        f"  copy ratio   : {receive['bytes_copied_ratio']}"
    )

    # The structural claim of the refactor: strictly fewer byte copies,
    # on the send side and now on the receive side too.
    assert plane["bytes_copied"] < legacy["bytes_copied"]
    assert (
        receive["record_plane"]["bytes_copied"]
        < receive["legacy"]["bytes_copied"]
    )
