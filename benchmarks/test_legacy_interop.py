"""§5.1 legacy interoperability — the "Alexa top 500" experiment.

The paper's modified curl fetched the root document of the top-500 sites
through an mbTLS proxy:

    500 total; 385 HTTPS; 308 succeeded; 19 invalid/expired certificates;
    40 lacked AES256-GCM; 13 redirect-handling failures; 5 unknown.

This bench reruns the experiment against the synthetic population (same
defect mix, real mbTLS client + middlebox + plain-TLS servers) and asserts
the identical breakdown.
"""

from conftest import emit

from repro.bench.alexa import PAPER_COUNTS, generate_alexa_population
from repro.bench.interop import FetchOutcome, run_alexa
from repro.bench.tables import render_table


def test_legacy_interop_alexa500(benchmark, bench_pki, bench_rng):
    servers = generate_alexa_population(bench_rng.fork(b"alexa-pop"))

    def run():
        return run_alexa(servers, bench_pki, bench_rng.fork(b"alexa-run"))

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["total sites", PAPER_COUNTS["total"], len(servers)],
        [
            "support HTTPS",
            PAPER_COUNTS["https"],
            len(servers) - counts[FetchOutcome.NO_HTTPS],
        ],
        ["successful fetches", PAPER_COUNTS["success"], counts[FetchOutcome.SUCCESS]],
        [
            "invalid/expired certificate",
            PAPER_COUNTS["bad_certificate"],
            counts[FetchOutcome.BAD_CERTIFICATE],
        ],
        [
            "no AES256-GCM in common",
            PAPER_COUNTS["no_common_cipher"],
            counts[FetchOutcome.NO_COMMON_CIPHER],
        ],
        ["redirect handling", PAPER_COUNTS["redirect"], counts[FetchOutcome.REDIRECT]],
        ["unknown failures", PAPER_COUNTS["unknown"], counts[FetchOutcome.UNKNOWN]],
    ]
    emit(
        render_table(
            "§5.1 Legacy interoperability (mbTLS client + proxy vs legacy servers)",
            ["category", "paper", "measured"],
            rows,
        )
    )

    assert counts[FetchOutcome.SUCCESS] == PAPER_COUNTS["success"]
    assert counts[FetchOutcome.BAD_CERTIFICATE] == PAPER_COUNTS["bad_certificate"]
    assert counts[FetchOutcome.NO_COMMON_CIPHER] == PAPER_COUNTS["no_common_cipher"]
    assert counts[FetchOutcome.REDIRECT] == PAPER_COUNTS["redirect"]
    assert counts[FetchOutcome.UNKNOWN] == PAPER_COUNTS["unknown"]
    assert counts[FetchOutcome.NO_HTTPS] == (
        PAPER_COUNTS["total"] - PAPER_COUNTS["https"]
    )
