"""Table 2 — Handshake Viability.

The paper performed mbTLS handshakes from 241 client sites across nine
network types (Tor exits + manual vantage points) and found every one
succeeded: filters in the wild do not meddle with TCP payloads of flows
they don't terminate. This bench runs the same experiment over the
synthetic site population (same per-type counts, observed filter mix) and
prints the per-type success table.
"""

from conftest import emit

from repro.bench.population import NETWORK_TYPE_COUNTS, generate_population
from repro.bench.tables import render_table
from repro.bench.viability import run_population

PAPER_TOTAL_SITES = 241


def test_table2_handshake_viability(benchmark, bench_pki, bench_rng):
    sites = generate_population(bench_rng.fork(b"table2-pop"))
    assert len(sites) == PAPER_TOTAL_SITES

    def run():
        return run_population(sites, bench_pki, bench_rng.fork(b"table2-run"))

    results, by_type = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [network_type, f"{ok}/{total}"]
        for network_type, (ok, total) in sorted(by_type.items())
    ]
    rows.append(["Total", f"{sum(o for o, _ in by_type.values())}/{len(sites)}"])
    emit(
        render_table(
            "Table 2 — mbTLS handshake viability by client network type",
            ["network type", "successful handshakes"],
            rows,
        )
    )

    # The paper's headline: ALL handshakes succeeded.
    assert all(result.handshake_ok for result in results)
    assert all(result.data_ok for result in results)
    assert all(result.middlebox_joined for result in results)
    assert {network_type: total for network_type, (_, total) in by_type.items()} == (
        NETWORK_TYPE_COUNTS
    )
