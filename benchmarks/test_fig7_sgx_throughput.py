"""Figure 7 — SGX (Non-)Overhead: middlebox throughput vs buffer size.

Sweeps the forwarding-loop cost model over the paper's buffer sizes
(512 B - 12 KB) in the four configurations {encryption, no encryption} x
{enclave, no enclave}. Shape claims:

  * running inside the enclave does NOT noticeably reduce throughput
    (interrupt handling dominates boundary crossings);
  * with encryption, throughput plateaus around 7 Gbps (crypto-bound);
  * throughput grows with buffer size (per-buffer overheads amortize).
"""

from conftest import emit

from repro.bench.tables import render_series
from repro.sgx.syscalls import SgxCostModel

BUFFER_SIZES = [512, 1024, 2048, 4096, 8192, 12288]
CONFIGS = [
    ("no-enc / no-enclave", False, False),
    ("no-enc / enclave", False, True),
    ("enc / no-enclave", True, False),
    ("enc / enclave", True, True),
]


def _sweep(model: SgxCostModel):
    series = {}
    for label, encryption, enclave in CONFIGS:
        series[label] = [
            (size, model.throughput(size, enclave=enclave, encryption=encryption).throughput_gbps)
            for size in BUFFER_SIZES
        ]
    return series


def test_fig7_sgx_throughput(benchmark):
    model = SgxCostModel()
    series = benchmark.pedantic(lambda: _sweep(model), rounds=1, iterations=1)
    emit(
        render_series(
            "Figure 7 — middlebox throughput (Gbps) vs buffer size",
            series,
            x_label="buffer bytes",
            y_label="Gbps",
        )
    )

    by_label = {label: dict(points) for label, points in series.items()}

    # Shape 1: the enclave is nearly free at every buffer size.
    for encryption in (False, True):
        plain_label = f"{'enc' if encryption else 'no-enc'} / no-enclave"
        enclave_label = f"{'enc' if encryption else 'no-enc'} / enclave"
        for size in BUFFER_SIZES:
            ratio = by_label[enclave_label][size] / by_label[plain_label][size]
            assert ratio > 0.85, (encryption, size, ratio)

    # Shape 2: encrypted throughput plateaus around 7 Gbps at large buffers.
    top = by_label["enc / no-enclave"][12288]
    prev = by_label["enc / no-enclave"][8192]
    assert 5.0 < top < 9.0
    assert (top - prev) / prev < 0.15

    # Shape 3: unencrypted forwarding reaches ~10 Gbps at 12 KB buffers.
    assert by_label["no-enc / no-enclave"][12288] > 8.0

    # Shape 4: throughput is monotone in buffer size for every config.
    for label, points in series.items():
        values = [gbps for _, gbps in points]
        assert values == sorted(values), label


def test_fig7_async_syscalls_dont_matter(benchmark):
    """The SCONE-style asynchronous-syscall optimization barely moves
    throughput for I/O-heavy middleboxes — the paper's §5.3 takeaway."""
    sync_model = SgxCostModel(async_syscalls=False)
    async_model = SgxCostModel(async_syscalls=True)

    def measure():
        return [
            (
                size,
                sync_model.throughput(size, enclave=True, encryption=True).throughput_gbps,
                async_model.throughput(size, enclave=True, encryption=True).throughput_gbps,
            )
            for size in BUFFER_SIZES
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for size, sync_gbps, async_gbps in rows:
        assert (async_gbps - sync_gbps) / sync_gbps < 0.12, size
