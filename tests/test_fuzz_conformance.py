"""Fuzz-conformance suite: the abort invariant under the mutation corpus.

Layered on the connection contract (``test_connection_contract.py``): every
one of the twelve Connection/DuplexConnection implementations is driven
through a session whose client-to-server byte stream is mutated by one
deterministic :class:`~repro.netsim.fuzz.ChunkMutator`, and must

* convert the damage into a clean alert/close (or survive it harmlessly),
* never hang the pump,
* never leak an exception that is not a :class:`~repro.errors.ReproError`,
* never deliver plaintext that was not sent (authenticated protocols),
* leave neither endpoint half-open.

Every failing case is reproducible from its printed
``(seed, mutation_index)`` pair alone.
"""

from __future__ import annotations

import pytest

from repro.bench.fuzzing import CASE_NAMES, UNAUTHENTICATED_CASES, run_case
from repro.netsim.fuzz import MUTATION_KINDS, ChunkMutator, FuzzCase, FuzzTap

SEEDS = (b"fz-0", b"fz-1", b"fz-2", b"fz-3", b"fz-4")


# ---------------------------------------------------------------------------
# The mutator itself
# ---------------------------------------------------------------------------


class TestChunkMutator:
    def test_replay_from_seed_and_index_alone(self):
        chunks = [b"alpha-record", b"beta-record", b"gamma-record", b"delta"]
        for kind in MUTATION_KINDS:
            first = ChunkMutator(b"replay", 1, kind)
            second = ChunkMutator(b"replay", 1, kind)
            out_a = [first.process_chunk(c) for c in chunks]
            out_b = [second.process_chunk(c) for c in chunks]
            assert out_a == out_b
            assert first.applied == second.applied

    def test_only_target_chunk_is_mutated(self):
        chunks = [b"one-one-one", b"two-two-two", b"three-three"]
        for kind in MUTATION_KINDS:
            if kind in ("reorder", "duplicate"):
                continue  # these change stream shape, not just one chunk
            mutator = ChunkMutator(b"target", 1, kind)
            outputs = [mutator.process_chunk(c) for c in chunks]
            assert outputs[0] == chunks[0]
            assert outputs[2] == chunks[2]
            assert outputs[1] != chunks[1]

    def test_reorder_holds_then_releases_behind_successor(self):
        mutator = ChunkMutator(b"swap", 0, "reorder")
        assert mutator.process_chunk(b"first") is None
        assert mutator.process_chunk(b"second") == b"second" + b"first"
        assert mutator.process_chunk(b"third") == b"third"

    def test_drbg_kind_selection_is_deterministic(self):
        kinds = {ChunkMutator(b"pick", 3).kind for _ in range(4)}
        assert len(kinds) == 1
        assert kinds.pop() in MUTATION_KINDS

    def test_distinct_indices_draw_distinct_streams(self):
        kinds = {ChunkMutator(b"spread", index).kind for index in range(16)}
        assert len(kinds) > 1  # the index personalizes the DRBG

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChunkMutator(b"x", 0, "melt")

    def test_fuzz_tap_filters_by_sender(self):
        class _Host:
            def __init__(self, name):
                self.name = name

        tap = FuzzTap(ChunkMutator(b"tap", 0, "truncate"), sender="client")
        attacker_path = tap.process(_Host("client"), b"mutate-me-now", None)
        bystander_path = tap.process(_Host("server"), b"leave-me-alone", None)
        assert attacker_path != b"mutate-me-now"
        assert bystander_path == b"leave-me-alone"


# ---------------------------------------------------------------------------
# The corpus: 12 implementations x 8 kinds x 5 seeds
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", MUTATION_KINDS)
@pytest.mark.parametrize("name", CASE_NAMES)
def test_mutation_conformance(name, kind):
    for seed in SEEDS:
        report = run_case(name, FuzzCase(seed, 1, kind))
        assert report.ok, report.describe()


@pytest.mark.parametrize("name", CASE_NAMES)
def test_drbg_chosen_kind_conformance(name):
    """Kind drawn from the DRBG, mutating a later chunk (data phase)."""
    for seed in SEEDS:
        report = run_case(name, FuzzCase(seed, 4))
        assert report.ok, report.describe()


@pytest.mark.parametrize("name", CASE_NAMES)
def test_replay_is_byte_identical(name):
    case = FuzzCase(b"replay-seed", 2)
    first = run_case(name, case)
    second = run_case(name, case)
    assert first.digest == second.digest
    assert first.events == second.events
    assert first.mutations == second.mutations
    assert first.kind == second.kind


def test_tampering_is_actually_observed():
    """The corpus is not vacuous: mutations hit live traffic and at least
    one authenticated implementation aborts through the alert plane."""
    saw_mutation = False
    saw_abort = False
    for name in CASE_NAMES:
        for seed in SEEDS[:2]:
            report = run_case(name, FuzzCase(seed, 1, "bit_flip"))
            saw_mutation = saw_mutation or bool(report.mutations)
            if name not in UNAUTHENTICATED_CASES:
                saw_abort = saw_abort or any(
                    "ConnectionClosed" in entry for entry in report.events
                )
    assert saw_mutation
    assert saw_abort


def test_case_names_cover_the_contract_matrix():
    """The fuzz corpus and the connection contract pin the same twelve."""
    assert len(CASE_NAMES) == 12
    assert set(CASE_NAMES) == {
        "tls",
        "mbtls",
        "mctls",
        "blindbox",
        "mbtls_middlebox",
        "split_tls",
        "splice_relay",
        "shared_key",
        "mctls_inspector",
        "blindbox_inspector",
        "mdtls",
        "mdtls_middlebox",
    }


def test_mutation_kinds_meet_corpus_floor():
    assert len(MUTATION_KINDS) >= 8
    assert len(SEEDS) >= 5
