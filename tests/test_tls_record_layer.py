"""Record protection: sequence binding, reorder/replay rejection, key schedule."""

import pytest

from repro.errors import IntegrityError, ProtocolError
from repro.tls.ciphersuites import CIPHER_SUITES, suite_by_code
from repro.tls.keyschedule import (
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)
from repro.tls.record_layer import ConnectionState
from repro.wire.records import ContentType, MAX_FRAGMENT


def make_states(rng, code=0xC030):
    suite = suite_by_code(code)
    key = rng.random_bytes(suite.key_length)
    iv = rng.random_bytes(suite.fixed_iv_length)
    return (
        ConnectionState(suite, key, iv),
        ConnectionState(suite, key, iv),
    )


class TestProtectUnprotect:
    @pytest.mark.parametrize("code", sorted(CIPHER_SUITES))
    def test_roundtrip_all_suites(self, rng, code):
        sender, receiver = make_states(rng, code)
        record = sender.protect(ContentType.APPLICATION_DATA, b"payload")
        assert receiver.unprotect(record) == b"payload"

    def test_sequence_advances(self, rng):
        sender, receiver = make_states(rng)
        for index in range(5):
            record = sender.protect(ContentType.APPLICATION_DATA, b"%d" % index)
            assert receiver.unprotect(record) == b"%d" % index
        assert sender.sequence == receiver.sequence == 5

    def test_content_type_bound_into_aad(self, rng):
        sender, receiver = make_states(rng)
        record = sender.protect(ContentType.APPLICATION_DATA, b"data")
        forged = type(record)(
            content_type=ContentType.ALERT, payload=record.payload
        )
        with pytest.raises(IntegrityError):
            receiver.unprotect(forged)

    def test_reordered_records_rejected(self, rng):
        sender, receiver = make_states(rng)
        first = sender.protect(ContentType.APPLICATION_DATA, b"one")
        second = sender.protect(ContentType.APPLICATION_DATA, b"two")
        assert receiver.unprotect(second) != b"one" if False else True
        with pytest.raises(IntegrityError):
            receiver.unprotect(second)  # out of order: receiver expects seq 0

    def test_replay_rejected(self, rng):
        sender, receiver = make_states(rng)
        record = sender.protect(ContentType.APPLICATION_DATA, b"once")
        assert receiver.unprotect(record) == b"once"
        with pytest.raises(IntegrityError):
            receiver.unprotect(record)

    def test_cross_key_rejected(self, rng):
        sender, _ = make_states(rng)
        _, other_receiver = make_states(rng)
        record = sender.protect(ContentType.APPLICATION_DATA, b"data")
        with pytest.raises(IntegrityError):
            other_receiver.unprotect(record)

    def test_short_record_rejected(self, rng):
        _, receiver = make_states(rng)
        from repro.wire.records import Record

        with pytest.raises(IntegrityError):
            receiver.unprotect(Record(ContentType.APPLICATION_DATA, b"tiny"))

    def test_oversize_fragment_rejected(self, rng):
        sender, _ = make_states(rng)
        with pytest.raises(ProtocolError):
            sender.protect(ContentType.APPLICATION_DATA, b"x" * (MAX_FRAGMENT + 1))

    def test_clone_at_resumes_sequence(self, rng):
        sender, receiver = make_states(rng)
        sender.protect(ContentType.APPLICATION_DATA, b"skip")  # seq 0 consumed
        record = sender.protect(ContentType.APPLICATION_DATA, b"kept")
        late_receiver = receiver.clone_at(1)
        assert late_receiver.unprotect(record) == b"kept"

    def test_wrong_key_length_rejected(self, rng):
        suite = suite_by_code(0xC030)
        with pytest.raises(ProtocolError):
            ConnectionState(suite, b"short", b"\x00" * 4)
        with pytest.raises(ProtocolError):
            ConnectionState(suite, b"\x00" * 32, b"wrong-iv-len")


class TestKeySchedule:
    def test_master_secret_length_and_determinism(self):
        master = derive_master_secret(b"pms", b"c" * 32, b"s" * 32)
        assert len(master) == 48
        assert master == derive_master_secret(b"pms", b"c" * 32, b"s" * 32)

    def test_master_secret_random_separation(self):
        a = derive_master_secret(b"pms", b"c" * 32, b"s" * 32)
        b = derive_master_secret(b"pms", b"d" * 32, b"s" * 32)
        assert a != b

    def test_key_block_shape(self):
        suite = suite_by_code(0xC030)
        block = derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32, suite)
        assert len(block.client_write_key) == 32
        assert len(block.server_write_key) == 32
        assert len(block.client_write_iv) == 4
        assert block.client_write_key != block.server_write_key

    def test_finished_role_separation(self):
        transcript = b"t" * 32
        client = finished_verify_data(b"m" * 48, transcript, is_client=True)
        server = finished_verify_data(b"m" * 48, transcript, is_client=False)
        assert client != server and len(client) == 12

    def test_finished_transcript_sensitivity(self):
        a = finished_verify_data(b"m" * 48, b"t1" * 16, is_client=True)
        b = finished_verify_data(b"m" * 48, b"t2" * 16, is_client=True)
        assert a != b
