"""Record protection: sequence binding, reorder/replay rejection, key schedule."""

import pytest

from repro.errors import IntegrityError, ProtocolError
from repro.tls.ciphersuites import CIPHER_SUITES, suite_by_code
from repro.tls.keyschedule import (
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)
from repro.tls.record_layer import ConnectionState
from repro.wire.records import ContentType, MAX_FRAGMENT


def make_states(rng, code=0xC030):
    suite = suite_by_code(code)
    key = rng.random_bytes(suite.key_length)
    iv = rng.random_bytes(suite.fixed_iv_length)
    return (
        ConnectionState(suite, key, iv),
        ConnectionState(suite, key, iv),
    )


class TestProtectUnprotect:
    @pytest.mark.parametrize("code", sorted(CIPHER_SUITES))
    def test_roundtrip_all_suites(self, rng, code):
        sender, receiver = make_states(rng, code)
        record = sender.protect(ContentType.APPLICATION_DATA, b"payload")
        assert receiver.unprotect(record) == b"payload"

    def test_sequence_advances(self, rng):
        sender, receiver = make_states(rng)
        for index in range(5):
            record = sender.protect(ContentType.APPLICATION_DATA, b"%d" % index)
            assert receiver.unprotect(record) == b"%d" % index
        assert sender.sequence == receiver.sequence == 5

    def test_content_type_bound_into_aad(self, rng):
        sender, receiver = make_states(rng)
        record = sender.protect(ContentType.APPLICATION_DATA, b"data")
        forged = type(record)(
            content_type=ContentType.ALERT, payload=record.payload
        )
        with pytest.raises(IntegrityError):
            receiver.unprotect(forged)

    def test_reordered_records_rejected(self, rng):
        sender, receiver = make_states(rng)
        first = sender.protect(ContentType.APPLICATION_DATA, b"one")
        second = sender.protect(ContentType.APPLICATION_DATA, b"two")
        assert receiver.unprotect(second) != b"one" if False else True
        with pytest.raises(IntegrityError):
            receiver.unprotect(second)  # out of order: receiver expects seq 0

    def test_replay_rejected(self, rng):
        sender, receiver = make_states(rng)
        record = sender.protect(ContentType.APPLICATION_DATA, b"once")
        assert receiver.unprotect(record) == b"once"
        with pytest.raises(IntegrityError):
            receiver.unprotect(record)

    def test_cross_key_rejected(self, rng):
        sender, _ = make_states(rng)
        _, other_receiver = make_states(rng)
        record = sender.protect(ContentType.APPLICATION_DATA, b"data")
        with pytest.raises(IntegrityError):
            other_receiver.unprotect(record)

    def test_short_record_rejected(self, rng):
        _, receiver = make_states(rng)
        from repro.wire.records import Record

        with pytest.raises(IntegrityError):
            receiver.unprotect(Record(ContentType.APPLICATION_DATA, b"tiny"))

    def test_oversize_fragment_rejected(self, rng):
        sender, _ = make_states(rng)
        with pytest.raises(ProtocolError):
            sender.protect(ContentType.APPLICATION_DATA, b"x" * (MAX_FRAGMENT + 1))

    def test_clone_at_resumes_sequence(self, rng):
        sender, receiver = make_states(rng)
        sender.protect(ContentType.APPLICATION_DATA, b"skip")  # seq 0 consumed
        record = sender.protect(ContentType.APPLICATION_DATA, b"kept")
        late_receiver = receiver.clone_at(1)
        assert late_receiver.unprotect(record) == b"kept"

    def test_wrong_key_length_rejected(self, rng):
        suite = suite_by_code(0xC030)
        with pytest.raises(ProtocolError):
            ConnectionState(suite, b"short", b"\x00" * 4)
        with pytest.raises(ProtocolError):
            ConnectionState(suite, b"\x00" * 32, b"wrong-iv-len")


class TestKeySchedule:
    def test_master_secret_length_and_determinism(self):
        master = derive_master_secret(b"pms", b"c" * 32, b"s" * 32)
        assert len(master) == 48
        assert master == derive_master_secret(b"pms", b"c" * 32, b"s" * 32)

    def test_master_secret_random_separation(self):
        a = derive_master_secret(b"pms", b"c" * 32, b"s" * 32)
        b = derive_master_secret(b"pms", b"d" * 32, b"s" * 32)
        assert a != b

    def test_key_block_shape(self):
        suite = suite_by_code(0xC030)
        block = derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32, suite)
        assert len(block.client_write_key) == 32
        assert len(block.server_write_key) == 32
        assert len(block.client_write_iv) == 4
        assert block.client_write_key != block.server_write_key

    def test_finished_role_separation(self):
        transcript = b"t" * 32
        client = finished_verify_data(b"m" * 48, transcript, is_client=True)
        server = finished_verify_data(b"m" * 48, transcript, is_client=False)
        assert client != server and len(client) == 12

    def test_finished_transcript_sensitivity(self):
        a = finished_verify_data(b"m" * 48, b"t1" * 16, is_client=True)
        b = finished_verify_data(b"m" * 48, b"t2" * 16, is_client=True)
        assert a != b


class TestAeadCache:
    def test_same_key_shares_one_context(self, rng):
        from repro.tls.record_layer import aead_for

        suite = suite_by_code(0xC030)
        key = rng.random_bytes(suite.key_length)
        assert aead_for(suite, key) is aead_for(suite, key)

    def test_distinct_keys_distinct_contexts(self, rng):
        from repro.tls.record_layer import aead_for

        suite = suite_by_code(0xC030)
        assert aead_for(suite, rng.random_bytes(32)) is not aead_for(
            suite, rng.random_bytes(32)
        )

    def test_connection_states_share_cached_context(self, rng):
        sender, receiver = make_states(rng)
        assert sender._aead is receiver._aead

    def test_clone_shares_context(self, rng):
        sender, _ = make_states(rng)
        assert sender.clone_at(7)._aead is sender._aead

    def test_cache_eviction_bounded(self, rng):
        from repro.tls import record_layer

        suite = suite_by_code(0xC030)
        previous = record_layer.aead_cache_capacity(8)
        try:
            for _ in range(16):
                record_layer.aead_for(suite, rng.random_bytes(32))
            assert len(record_layer._AEAD_CACHE) <= 8
        finally:
            record_layer.aead_cache_capacity(previous)

    def test_fleet_sized_capacity(self):
        # The default capacity must hold the working set of 10^4+ concurrent
        # sessions (~6 contexts each with a middlebox chain) without thrash.
        from repro.tls import record_layer

        assert record_layer._AEAD_CACHE_MAX >= 6 * 10_000

    def test_eviction_counter(self, rng):
        import repro.obs as obs
        from repro.tls import record_layer

        suite = suite_by_code(0xC030)
        previous = record_layer.aead_cache_capacity(4)
        record_layer.reset_aead_cache()
        try:
            with obs.scoped() as plane:
                for _ in range(10):
                    record_layer.aead_for(suite, rng.random_bytes(32))
                evicted = plane.metrics.counter_value("aead_cache.evictions")
                size = plane.metrics.gauge_value("aead_cache.size")
            assert evicted == 6
            assert size == 4
        finally:
            record_layer.aead_cache_capacity(previous)


class TestBatchedRecords:
    @pytest.mark.parametrize("code", sorted(CIPHER_SUITES))
    def test_protect_many_byte_identical_to_sequential(self, rng, code):
        batch_sender, seq_sender = make_states(rng, code)
        items = [
            (ContentType.APPLICATION_DATA, rng.random_bytes(n))
            for n in (0, 1, 100, 1500, MAX_FRAGMENT)
        ]
        batched = batch_sender.protect_many(items)
        sequential = [seq_sender.protect(ct, pt) for ct, pt in items]
        assert [r.encode() for r in batched] == [r.encode() for r in sequential]
        assert batch_sender.sequence == seq_sender.sequence

    def test_unprotect_many_matches_sequential(self, rng):
        sender, receiver = make_states(rng)
        payloads = [b"a" * 100, b"b" * 2000, b""]
        records = sender.protect_many(
            [(ContentType.APPLICATION_DATA, p) for p in payloads]
        )
        assert receiver.unprotect_many(records) == payloads
        assert receiver.sequence == sender.sequence

    def test_unprotect_many_tamper_consumes_nothing(self, rng):
        """All-or-nothing: a bad record mid-batch leaves the receiver able
        to replay per record and recover the valid prefix."""
        from repro.wire.records import Record

        sender, receiver = make_states(rng)
        records = sender.protect_many(
            [(ContentType.APPLICATION_DATA, bytes([i]) * 50) for i in range(3)]
        )
        bad = bytearray(records[1].payload)
        bad[-1] ^= 0x01
        records[1] = Record(ContentType.APPLICATION_DATA, bytes(bad))
        with pytest.raises(IntegrityError):
            receiver.unprotect_many(records)
        assert receiver.sequence == 0
        assert receiver.unprotect(records[0]) == bytes([0]) * 50
        with pytest.raises(IntegrityError):
            receiver.unprotect(records[1])

    def test_unprotect_many_short_record_consumes_nothing(self, rng):
        from repro.wire.records import Record

        sender, receiver = make_states(rng)
        records = sender.protect_many(
            [(ContentType.APPLICATION_DATA, b"x" * 20) for _ in range(2)]
        )
        records.append(Record(ContentType.APPLICATION_DATA, b"tiny"))
        with pytest.raises(IntegrityError):
            receiver.unprotect_many(records)
        assert receiver.sequence == 0


class TestDeferredSealing:
    """RecordPlane defers app-data sealing; wire bytes must be identical."""

    def _plane_with_writer(self, rng):
        from repro.io.record_plane import RecordPlane

        sender, reference = make_states(rng)
        plane = RecordPlane()
        plane.write_state = sender
        return plane, reference

    def test_deferred_flight_matches_eager_sealing(self, rng):
        plane, reference = self._plane_with_writer(rng)
        chunks = [b"1" * 10, b"2" * 5000, b"3" * MAX_FRAGMENT]
        for chunk in chunks:
            plane.queue_application_data(chunk)
        expected = b"".join(
            reference.protect(ContentType.APPLICATION_DATA, chunk).encode()
            for chunk in chunks
        )
        assert plane.data_to_send() == expected

    def test_pending_seal_counts_as_output(self, rng):
        plane, _ = self._plane_with_writer(rng)
        assert not plane.has_output
        plane.queue_record(ContentType.APPLICATION_DATA, b"x")
        assert plane.has_output
        plane.data_to_send()
        assert not plane.has_output

    def test_verbatim_queue_flushes_first(self, rng):
        """A forwarded record queued after app data must stay after it."""
        from repro.wire.records import Record

        plane, reference = self._plane_with_writer(rng)
        plane.queue_record(ContentType.APPLICATION_DATA, b"first")
        plane.queue_encoded(Record(ContentType.HANDSHAKE, b"fwd"))
        wire = plane.data_to_send()
        expected_first = reference.protect(
            ContentType.APPLICATION_DATA, b"first"
        ).encode()
        assert wire.startswith(expected_first)
        assert wire.endswith(Record(ContentType.HANDSHAKE, b"fwd").encode())

    def test_sequences_reflect_pending_records(self, rng):
        plane, _ = self._plane_with_writer(rng)
        plane.queue_record(ContentType.APPLICATION_DATA, b"a")
        plane.queue_record(ContentType.APPLICATION_DATA, b"b")
        write_seq, _read = plane.sequences()
        assert write_seq == 2

    def test_state_swap_seals_under_old_keys(self, rng):
        plane, reference = self._plane_with_writer(rng)
        new_sender, _ = make_states(rng)
        plane.queue_record(ContentType.APPLICATION_DATA, b"old-keys")
        plane.replace_states(None, new_sender)
        wire = plane.data_to_send()
        assert wire == reference.protect(
            ContentType.APPLICATION_DATA, b"old-keys"
        ).encode()


class TestOutboxBound:
    """The 4 MiB outbound bound must hold at queue time, before sealing —
    a deferred-seal queue is still buffered memory (ISSUE 5 audit)."""

    def test_unsealed_queue_counts_toward_bound(self, rng):
        from repro.io.record_plane import MAX_BUFFERED_BYTES, RecordPlane

        sender, _ = make_states(rng)
        plane = RecordPlane()
        plane.write_state = sender
        chunk = b"x" * MAX_FRAGMENT
        with pytest.raises(ProtocolError, match="outbound buffer"):
            # Never drain: if only drained bytes counted, this would loop
            # forever; the bound must trip while everything is still
            # plaintext in the deferred-seal queue.
            for _ in range(2 * MAX_BUFFERED_BYTES // MAX_FRAGMENT):
                plane.queue_application_data(chunk)
        # Nothing was sealed or drained on the way to the overflow.
        assert plane.flights_drained == 0
        assert len(plane._outbox) == 0

    def test_bound_includes_seal_overhead(self, rng):
        from repro.io.record_plane import MAX_BUFFERED_BYTES, RecordPlane

        sender, _ = make_states(rng)
        plane = RecordPlane()
        plane.write_state = sender
        overhead = RecordPlane._SEAL_OVERHEAD
        # Exactly at the bound: fits.
        plane.queue_record(
            ContentType.APPLICATION_DATA, b"x" * (MAX_BUFFERED_BYTES - overhead)
        )
        # One more byte of payload would exceed it once sealed.
        with pytest.raises(ProtocolError, match="outbound buffer"):
            plane.queue_record(ContentType.APPLICATION_DATA, b"y")

    def test_overflow_leaves_queued_flight_intact(self, rng):
        from repro.io.record_plane import MAX_BUFFERED_BYTES, RecordPlane

        sender, reference = make_states(rng)
        plane = RecordPlane()
        plane.write_state = sender
        plane.queue_record(ContentType.APPLICATION_DATA, b"keep")
        with pytest.raises(ProtocolError):
            plane.queue_record(ContentType.APPLICATION_DATA, b"z" * MAX_BUFFERED_BYTES)
        assert plane.data_to_send() == reference.protect(
            ContentType.APPLICATION_DATA, b"keep"
        ).encode()
