"""KDFs (TLS PRF, HKDF vs oracle) and the HMAC-DRBG."""

import pytest
from cryptography.hazmat.primitives import hashes
from cryptography.hazmat.primitives.kdf.hkdf import HKDF as OracleHKDF
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg, system_rng
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract, p_hash, prf


class TestPrf:
    def test_prf_deterministic(self):
        a = prf(b"secret", b"label", b"seed", 48)
        b = prf(b"secret", b"label", b"seed", 48)
        assert a == b and len(a) == 48

    def test_prf_label_separation(self):
        assert prf(b"s", b"label-a", b"seed", 32) != prf(b"s", b"label-b", b"seed", 32)

    def test_prf_seed_separation(self):
        assert prf(b"s", b"label", b"seed-a", 32) != prf(b"s", b"label", b"seed-b", 32)

    def test_prf_is_p_hash_of_label_plus_seed(self):
        assert prf(b"s", b"lbl", b"seed", 64) == p_hash(b"s", b"lblseed", 64)

    @pytest.mark.parametrize("length", [1, 31, 32, 33, 100])
    def test_p_hash_lengths(self, length):
        assert len(p_hash(b"secret", b"seed", length)) == length


class TestHkdf:
    def test_matches_oracle(self, rng):
        for _ in range(5):
            ikm = rng.random_bytes(22)
            salt = rng.random_bytes(13)
            info = rng.random_bytes(10)
            oracle = OracleHKDF(
                algorithm=hashes.SHA256(), length=42, salt=salt, info=info
            )
            assert hkdf(ikm, salt=salt, info=info, length=42) == oracle.derive(ikm)

    def test_empty_salt_matches_oracle(self, rng):
        ikm = rng.random_bytes(32)
        oracle = OracleHKDF(algorithm=hashes.SHA256(), length=32, salt=None, info=b"")
        assert hkdf(ikm, length=32) == oracle.derive(ikm)

    def test_expand_length_limit(self):
        prk = hkdf_extract(b"salt", b"ikm")
        with pytest.raises(ValueError):
            hkdf_expand(prk, b"info", 255 * 32 + 1)


class TestDrbg:
    def test_determinism(self):
        assert HmacDrbg(b"seed").random_bytes(64) == HmacDrbg(b"seed").random_bytes(64)

    def test_seed_separation(self):
        assert HmacDrbg(b"a").random_bytes(32) != HmacDrbg(b"b").random_bytes(32)

    def test_personalization_separation(self):
        assert (
            HmacDrbg(b"s", b"p1").random_bytes(32)
            != HmacDrbg(b"s", b"p2").random_bytes(32)
        )

    def test_stream_advances(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.random_bytes(16) != drbg.random_bytes(16)

    def test_fork_independence(self):
        parent = HmacDrbg(b"seed")
        child_a = parent.fork(b"a")
        child_b = parent.fork(b"b")
        assert child_a.random_bytes(32) != child_b.random_bytes(32)

    def test_fork_determinism(self):
        def build():
            return HmacDrbg(b"seed").fork(b"x").random_bytes(16)

        assert build() == build()

    @settings(max_examples=50, deadline=None)
    @given(bits=st.integers(min_value=1, max_value=256))
    def test_randbits_range(self, bits):
        value = HmacDrbg(b"seed").randbits(bits)
        assert 0 <= value < (1 << bits)

    @settings(max_examples=50, deadline=None)
    @given(low=st.integers(-1000, 1000), span=st.integers(0, 1000))
    def test_randint_range_bounds(self, low, span):
        value = HmacDrbg(b"seed").randint_range(low, low + span)
        assert low <= value <= low + span

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"seed").randint_range(5, 4)

    def test_choice(self):
        drbg = HmacDrbg(b"seed")
        items = ["a", "b", "c"]
        for _ in range(10):
            assert drbg.choice(items) in items

    def test_random_unit_interval(self):
        drbg = HmacDrbg(b"seed")
        for _ in range(100):
            value = drbg.random()
            assert 0.0 <= value < 1.0

    def test_system_rng_unique(self):
        assert system_rng().random_bytes(16) != system_rng().random_bytes(16)

    def test_randbits_distribution_coarse(self):
        drbg = HmacDrbg(b"seed")
        ones = sum(drbg.randbits(1) for _ in range(2000))
        assert 800 < ones < 1200  # crude sanity: not constant, not biased
