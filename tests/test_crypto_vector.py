"""Vectorized ChaCha20-Poly1305 coverage: the big-int lane path against
RFC 8439 known answers and the scalar path, the block-count cutover, the
amortized Poly1305, and the counter-overflow regression."""

import pytest
from cryptography.hazmat.primitives.ciphers.aead import (
    ChaCha20Poly1305 as OracleChaCha,
)

from repro.crypto import chacha
from repro.crypto.chacha import (
    ChaCha20Poly1305,
    chacha20_block,
    chacha20_xor,
    poly1305_mac,
)
from repro.errors import CryptoError

# RFC 8439 §2.3.2 test vector: one block.
RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
RFC_BLOCK1 = bytes.fromhex(
    "10f1e7e4d13b5915500fdd1fa32071c4"
    "c7d1f4c733c068030422aa9ac3d46c4e"
    "d2826446079faa0914c2d705d98b02a2"
    "b5129cd1de164eb9cbd083e8a2503c4e"
)


class _scalar_chacha:
    """Force the scalar keystream / per-block Poly1305 paths."""

    def __enter__(self):
        self._saved = (chacha._VECTOR_THRESHOLD, chacha._POLY_CHUNK_BYTES)
        chacha._VECTOR_THRESHOLD = 1 << 60
        chacha._POLY_CHUNK_BYTES = 1 << 60
        return self

    def __exit__(self, *exc):
        chacha._VECTOR_THRESHOLD, chacha._POLY_CHUNK_BYTES = self._saved
        return False


class TestKnownAnswers:
    def test_rfc8439_single_block(self):
        assert chacha20_block(RFC_KEY, 1, RFC_NONCE) == RFC_BLOCK1

    def test_rfc8439_keystream_spans_vector_path(self):
        # Enough blocks to clear the cutover: every 64-byte slice of the
        # vectorized keystream must equal the per-block function.
        blocks = chacha._VECTOR_THRESHOLD + 3
        data = bytes(64 * blocks)
        stream = chacha20_xor(RFC_KEY, 1, RFC_NONCE, data)
        for i in range(blocks):
            expected = chacha20_block(RFC_KEY, 1 + i, RFC_NONCE)
            assert stream[64 * i : 64 * (i + 1)] == expected

    def test_rfc8439_aead_vector(self):
        # RFC 8439 §2.8.2: the full AEAD construction.
        key = bytes.fromhex(
            "808182838485868788898a8b8c8d8e8f"
            "909192939495969798999a9b9c9d9e9f"
        )
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        sealed = ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)
        assert sealed[-16:] == bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")
        assert ChaCha20Poly1305(key).decrypt(nonce, sealed, aad) == plaintext


class TestVectorScalarEquivalence:
    @pytest.mark.parametrize(
        "length",
        [
            0,  # empty plaintext
            1,
            63,
            64,
            65,
            64 * (chacha._VECTOR_THRESHOLD - 1),  # just below the cutover
            64 * chacha._VECTOR_THRESHOLD,  # exactly at the cutover
            64 * chacha._VECTOR_THRESHOLD + 1,
            64 * 7 + 13,  # odd block count, ragged tail
            64 * 33,  # crosses a lane-padding boundary
            16384,  # one record
        ],
    )
    def test_xor_matches_scalar(self, length, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        data = rng.random_bytes(length)
        fast = chacha20_xor(key, 1, nonce, data)
        with _scalar_chacha():
            slow = chacha20_xor(key, 1, nonce, data)
        assert fast == slow

    @pytest.mark.parametrize("length", [0, 16, 64, 65, 300, 16384])
    def test_seal_matches_scalar_and_oracle(self, length, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        plaintext = rng.random_bytes(length)
        aad = rng.random_bytes(11)
        fast = ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)
        with _scalar_chacha():
            slow = ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)
        assert fast == slow
        assert fast == OracleChaCha(key).encrypt(nonce, plaintext, aad)

    def test_empty_plaintext_and_aad(self, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = ChaCha20Poly1305(key).encrypt(nonce, b"", b"")
        assert sealed == OracleChaCha(key).encrypt(nonce, b"", b"")
        assert ChaCha20Poly1305(key).decrypt(nonce, sealed, b"") == b""

    @pytest.mark.parametrize("chunks", [1, 3, 4, 5, 9])
    def test_poly1305_horner_matches_per_block(self, chunks, rng):
        otk = rng.random_bytes(32)
        # Straddle the 4-block Horner chunking with ragged tails.
        for tail in (0, 1, 15, 16):
            message = rng.random_bytes(64 * chunks + tail)
            fast = poly1305_mac(otk, message)
            with _scalar_chacha():
                slow = poly1305_mac(otk, message)
            assert fast == slow

    def test_batched_seal_matches_sequential(self, rng):
        key = rng.random_bytes(32)
        aead = ChaCha20Poly1305(key)
        items = [
            (rng.random_bytes(12), rng.random_bytes(n), rng.random_bytes(7))
            for n in (0, 100, 16384, 64 * chacha._VECTOR_THRESHOLD, 5000)
        ]
        batched = aead.seal_many(items)
        sequential = [aead.encrypt(n, p, a) for n, p, a in items]
        assert batched == sequential
        opened = aead.open_many(
            [(n, c, a) for (n, _, a), c in zip(items, batched)]
        )
        assert opened == [p for _, p, _ in items]


class TestCounterOverflow:
    def test_block_counter_out_of_range(self):
        with pytest.raises(CryptoError):
            chacha20_block(RFC_KEY, 1 << 32, RFC_NONCE)
        with pytest.raises(CryptoError):
            chacha20_block(RFC_KEY, -1, RFC_NONCE)

    def test_keystream_wrap_raises_instead_of_reusing(self):
        # Two blocks starting at the last valid counter would wrap to 0
        # and reuse keystream; the regression is that this used to wrap
        # silently via `counter & 0xFFFFFFFF`.
        last = (1 << 32) - 1
        data = bytes(128)
        with pytest.raises(CryptoError):
            chacha20_xor(RFC_KEY, last, RFC_NONCE, data)
        # The last in-range single block still works, on both paths.
        one = chacha20_xor(RFC_KEY, last, RFC_NONCE, bytes(64))
        assert one == chacha20_block(RFC_KEY, last, RFC_NONCE)

    def test_vector_path_checks_span(self):
        # A span that only overflows several blocks in, above the cutover.
        start = (1 << 32) - 2
        data = bytes(64 * (chacha._VECTOR_THRESHOLD + 2))
        with pytest.raises(CryptoError):
            chacha20_xor(RFC_KEY, start, RFC_NONCE, data)


class TestLaneCache:
    def test_key_lane_cache_reused_and_correct(self, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        data = rng.random_bytes(64 * 16)
        first = chacha20_xor(key, 1, nonce, data)
        # Second call hits the per-key lane cache; output must not drift.
        second = chacha20_xor(key, 1, nonce, data)
        assert first == second
        with _scalar_chacha():
            assert first == chacha20_xor(key, 1, nonce, data)
