"""Reader/Writer: bounds checks, round-trips, vector handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer


class TestWriter:
    def test_uint_sizes(self):
        writer = Writer()
        writer.write_u8(0xAB).write_u16(0xCDEF).write_u24(0x123456)
        writer.write_u32(0x789ABCDE).write_u64(1)
        assert writer.getvalue() == bytes.fromhex("ab cdef 123456 789abcde 0000000000000001".replace(" ", ""))

    def test_uint_overflow_rejected(self):
        with pytest.raises(DecodeError):
            Writer().write_u8(256)
        with pytest.raises(DecodeError):
            Writer().write_u16(1 << 16)

    def test_negative_rejected(self):
        with pytest.raises(DecodeError):
            Writer().write_u8(-1)

    def test_vector(self):
        assert Writer().write_vector(b"abc", 2).getvalue() == b"\x00\x03abc"

    def test_vector_too_long_rejected(self):
        with pytest.raises(DecodeError):
            Writer().write_vector(b"x" * 256, 1)


class TestReader:
    def test_sequential_reads(self):
        reader = Reader(b"\x01\x00\x02\x00\x00\x03hello")
        assert reader.read_u8() == 1
        assert reader.read_u16() == 2
        assert reader.read_u24() == 3
        assert reader.read_bytes(5) == b"hello"
        reader.expect_end()

    def test_truncated_read_raises(self):
        reader = Reader(b"\x01")
        with pytest.raises(DecodeError):
            reader.read_u16()

    def test_negative_length_raises(self):
        with pytest.raises(DecodeError):
            Reader(b"abc").read_bytes(-1)

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x01\x02")
        reader.read_u8()
        with pytest.raises(DecodeError):
            reader.expect_end()

    def test_vector_roundtrip(self):
        data = Writer().write_vector(b"payload", 3).getvalue()
        assert Reader(data).read_vector(3) == b"payload"

    def test_truncated_vector_raises(self):
        with pytest.raises(DecodeError):
            Reader(b"\x00\x10abc").read_vector(2)

    def test_rest(self):
        reader = Reader(b"\x01rest-of-it")
        reader.read_u8()
        assert reader.rest() == b"rest-of-it"
        assert reader.remaining == 0


class TestRoundtripProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.sampled_from([1, 2, 3, 4, 8]), st.integers(min_value=0)),
            max_size=10,
        )
    )
    def test_uint_roundtrip(self, values):
        writer = Writer()
        expected = []
        for size, raw in values:
            value = raw % (1 << (8 * size))
            writer.write_uint(value, size)
            expected.append((size, value))
        reader = Reader(writer.getvalue())
        for size, value in expected:
            assert reader.read_uint(size) == value
        reader.expect_end()

    @settings(max_examples=100, deadline=None)
    @given(chunks=st.lists(st.binary(max_size=50), max_size=8))
    def test_vector_roundtrip(self, chunks):
        writer = Writer()
        for chunk in chunks:
            writer.write_vector(chunk, 2)
        reader = Reader(writer.getvalue())
        for chunk in chunks:
            assert reader.read_vector(2) == chunk
        reader.expect_end()
