"""Middlebox applications running inside real mbTLS sessions: the paper's
header-inserting proxy, a cache, a compression pair, and an IDS."""


from helpers import MbTLSScenario
from repro.apps.cache import CacheApp, SharedCacheStore
from repro.apps.compression import Compressor, Decompressor
from repro.apps.http import HttpParser, HttpRequest, HttpResponse
from repro.apps.ids import IntrusionDetector, Signature
from repro.apps.proxy import HeaderInsertingProxy
from repro.core.config import MiddleboxRole


def http_get(path: str) -> bytes:
    return HttpRequest(method="GET", path=path, headers=[("Host", "server")]).encode()


def http_echo_server(data: bytes) -> bytes:
    """Parse requests, respond 200 with the path as body."""
    parser = HttpParser(parse_requests=True)
    out = bytearray()
    for request in parser.feed(data):
        out += HttpResponse(status=200, body=request.path.encode()).encode()
    return bytes(out)


class TestHeaderInsertingProxy:
    def test_inserts_via_header(self, rng, pki):
        """The paper's prototype: an HTTP proxy doing header insertion."""
        proxy = HeaderInsertingProxy(via="1.1 repro-proxy")
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, proxy, {})],
            server_kind="tls",
            server_reply=lambda data: b"",
        ).run_client(http_get("/index.html"))
        received = b"".join(scenario.server_received)
        assert b"Via: 1.1 repro-proxy\r\n" in received
        assert received.startswith(b"GET /index.html")
        assert proxy.requests_seen == 1

    def test_extra_headers_and_multiple_requests(self, rng, pki):
        proxy = HeaderInsertingProxy(extra_headers=[("X-Forwarded-For", "client")])
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, proxy, {})],
            server_kind="tls",
            server_reply=lambda data: b"",
        ).run_client(http_get("/a"))
        scenario.client_driver.send_application_data(http_get("/b"))
        scenario.network.sim.run()
        received = b"".join(scenario.server_received)
        assert received.count(b"X-Forwarded-For: client") == 2
        assert proxy.requests_seen == 2

    def test_responses_untouched(self, rng, pki):
        proxy = HeaderInsertingProxy()
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, proxy, {})],
            server_kind="tls",
            server_reply=http_echo_server,
        ).run_client(http_get("/path"))
        assert b"".join(scenario.client_received).endswith(b"/path")


class TestCache:
    def test_miss_then_hit(self, rng, pki):
        store = SharedCacheStore()
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("cache", MiddleboxRole.CLIENT_SIDE, CacheApp(store), {})],
            server_kind="tls",
            server_reply=http_echo_server,
        ).run_client(http_get("/page"))
        assert store.misses == 1 and store.hits == 0
        server_requests_before = len(scenario.server_received)

        scenario.client_driver.send_application_data(http_get("/page"))
        scenario.network.sim.run()
        assert store.hits == 1
        # Served from the cache: the server saw no second request.
        assert len(scenario.server_received) == server_requests_before
        responses = b"".join(scenario.client_received)
        assert b"X-Cache: HIT" in responses


class TestCompressionPair:
    def test_compress_then_decompress(self, rng, pki):
        compressor = Compressor(direction="s2c")
        decompressor = Decompressor(direction="s2c")
        body = b"A" * 4000  # highly compressible
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                # Path order from client: decompressor first, compressor
                # nearer the server — so s2c data is compressed then restored.
                ("decomp", MiddleboxRole.CLIENT_SIDE, decompressor, {}),
                ("comp", MiddleboxRole.CLIENT_SIDE, compressor, {}),
            ],
            server_kind="tls",
            server_reply=lambda data: body,
        ).run_client(b"GET")
        assert b"".join(scenario.client_received) == body
        assert compressor.bytes_out < compressor.bytes_in
        assert compressor.ratio < 0.1


class TestIDS:
    def test_logs_signature_matches(self, rng, pki):
        ids = IntrusionDetector([Signature(name="exfil", pattern=b"SECRET-DOC")])
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("ids", MiddleboxRole.CLIENT_SIDE, ids, {})],
            server_kind="tls",
        ).run_client(b"uploading SECRET-DOC contents")
        # Matched on the upload AND on the server's echo of it.
        assert [alert.signature for alert in ids.alerts] == ["exfil", "exfil"]
        assert {alert.direction for alert in ids.alerts} == {"c2s", "s2c"}
        # Log-only: traffic still flows.
        assert scenario.server_received

    def test_blocks_matching_chunks(self, rng, pki):
        ids = IntrusionDetector(
            [Signature(name="malware", pattern=b"EVIL-BYTES", block=True)]
        )
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("ids", MiddleboxRole.CLIENT_SIDE, ids, {})],
            server_kind="tls",
        ).run_client(b"payload with EVIL-BYTES inside")
        assert ids.blocked_chunks == 1
        assert scenario.server_received == []

    def test_cross_chunk_match(self, rng, pki):
        ids = IntrusionDetector([Signature(name="split", pattern=b"ABCDEF")])
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("ids", MiddleboxRole.CLIENT_SIDE, ids, {})],
            server_kind="tls",
        ).run_client(b"xxxABC")
        scenario.client_driver.send_application_data(b"DEFyyy")
        scenario.network.sim.run()
        assert [alert.signature for alert in ids.alerts] == ["split"]
