"""The examples are part of the public API surface: run each end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they did"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "outsourced_proxy.py", "edge_cdn.py",
            "attack_gauntlet.py"} <= names
