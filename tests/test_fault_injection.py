"""Chaos tests: seeded fault plans against live mbTLS sessions.

The acceptance bar: under loss bursts, stalls, partitions, and crashes,
every supervised session reaches a terminal outcome (established, degraded,
or cleanly failed) within its timer horizon — no hangs, no exceptions out
of the event loop — and the same seed reproduces the same outcomes.
"""

from __future__ import annotations

import pytest

from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole
from repro.core.drivers import MiddleboxService, RetryPolicy, SessionSupervisor, serve_mbtls
from repro.errors import NetworkError
from repro.netsim.faults import (
    CorruptionBurst,
    FaultInjector,
    FaultPlan,
    HostCrash,
    LinkPartition,
    LossBurst,
    StreamStall,
)
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.events import ApplicationData


def _identity(direction, data):
    return data


class ChaosWorld:
    """client -- mb0 -- server with a middlebox service and an mbTLS server."""

    def __init__(self, pki, rng, plan: FaultPlan | None = None,
                 policy: RetryPolicy | None = None):
        self.pki = pki
        self.rng = rng
        self.network = Network()
        for name in ("client", "mb0", "server"):
            self.network.add_host(name)
        self.network.add_link("client", "mb0", 0.002)
        self.network.add_link("mb0", "server", 0.002)
        self.policy = policy or RetryPolicy(
            handshake_timeout=0.5, idle_timeout=1.0,
            max_attempts=3, backoff_base=0.05, backoff_cap=0.4,
        )
        self.injector = FaultInjector(self.network, plan) if plan else None
        self.service = MiddleboxService(
            self.network.host("mb0"),
            lambda: MiddleboxConfig(
                name="mb0",
                tls=TLSConfig(rng=self.rng.fork(b"mb"),
                              credential=self.pki.credential("mb0")),
                role=MiddleboxRole.CLIENT_SIDE,
                process=_identity,
            ),
        )
        if self.injector is not None:
            self.injector.on_restart("mb0", self.service.reinstall)
        self.server_received: list[bytes] = []

        def on_server_event(engine, driver, event):
            if isinstance(event, ApplicationData):
                self.server_received.append(event.data)
                if not driver.session_over:
                    driver.send_application_data(b"ACK:" + event.data)

        serve_mbtls(
            self.network.host("server"),
            lambda: MbTLSEndpointConfig(
                tls=TLSConfig(rng=self.rng.fork(b"srv"),
                              credential=self.pki.credential("server")),
                middlebox_trust_store=self.pki.trust,
            ),
            on_event=on_server_event,
            policy=self.policy,
        )

    def client_config(self) -> MbTLSEndpointConfig:
        return MbTLSEndpointConfig(
            tls=TLSConfig(rng=self.rng.fork(b"cli"), trust_store=self.pki.trust,
                          server_name="server"),
            middlebox_trust_store=self.pki.trust,
        )

    def supervise(self, start_at: float = 0.0, request: bytes | None = None):
        holder: list[SessionSupervisor] = []

        def dial():
            def on_event(event):
                from repro.core.config import SessionEstablished

                if isinstance(event, SessionEstablished) and request is not None:
                    holder[0].send_application_data(request)

            supervisor = SessionSupervisor(
                self.network.host("client"), "server", self.client_config,
                on_event=on_event, policy=self.policy,
            )
            holder.append(supervisor)

        self.network.sim.schedule_at(start_at, dial)
        self._holders = getattr(self, "_holders", [])
        self._holders.append(holder)
        return holder

    def supervisors(self) -> list[SessionSupervisor]:
        return [holder[0] for holder in self._holders if holder]


def run_chaos(pki, seed: bytes, session_starts=(0.0, 0.01, 0.3, 0.8)):
    """One full chaos run; returns (outcomes, applied-fault kinds)."""
    from repro.crypto.drbg import HmacDrbg

    plan = FaultPlan(
        faults=(
            LossBurst(start=0.25, duration=0.1, rate=0.7,
                      hop=frozenset({"client", "mb0"})),
            LossBurst(start=0.9, duration=0.05, rate=0.5),
            StreamStall(start=0.6, duration=0.2,
                        hop=frozenset({"mb0", "server"})),
            HostCrash(time=0.012, host="mb0"),
        ),
        seed=seed,
    )
    world = ChaosWorld(pki, HmacDrbg(seed, personalization=b"chaos-run"), plan)
    for start in session_starts:
        world.supervise(start)
    world.network.sim.run(until=30.0)
    outcomes = [
        (supervisor.outcome, supervisor.attempt, supervisor.failure)
        for supervisor in world.supervisors()
    ]
    kinds = [fault.kind for fault in world.injector.log]
    return outcomes, kinds


class TestFaultPlan:
    def test_random_plan_is_deterministic(self):
        kwargs = dict(horizon=5.0, hops=(frozenset({"a", "b"}),),
                      crashable=("mb",))
        assert FaultPlan.random(b"s1", **kwargs) == FaultPlan.random(b"s1", **kwargs)
        assert FaultPlan.random(b"s1", **kwargs) != FaultPlan.random(b"s2", **kwargs)

    def test_describe_lists_faults(self):
        plan = FaultPlan.random(b"s", horizon=2.0, crashable=("m",),
                                crash_probability=1.0)
        text = plan.describe()
        assert "LossBurst" in text and "StreamStall" in text


class TestHostCrash:
    def test_crash_resets_streams_and_send_raises(self):
        network = Network()
        for name in ("a", "b"):
            network.add_host(name)
        network.add_link("a", "b", 0.001)
        closed = []
        network.host("b").listen(80, lambda sock, src: None)
        socket = network.host("a").connect("b", 80)
        socket.on_close(lambda: closed.append(True))
        network.sim.run()
        assert socket.connected
        network.crash_host("b")
        network.sim.run()
        assert closed and socket.closed
        with pytest.raises(NetworkError):
            socket.send(b"too late")

    def test_syn_to_crashed_host_is_refused_not_raised(self):
        network = Network()
        for name in ("a", "b"):
            network.add_host(name)
        network.add_link("a", "b", 0.001)
        network.host("b").listen(80, lambda sock, src: None)
        network.crash_host("b")
        closed = []
        socket = network.host("a").connect("b", 80)
        socket.on_close(lambda: closed.append(True))
        network.sim.run()  # must not raise
        assert closed and not socket.connected


class TestCrashRecovery:
    def test_middlebox_crash_mid_handshake_is_bypassed_by_retry(self, pki, rng):
        """The mb dies 12 ms in (mid-handshake); the client's retry routes
        past the dead interceptor and completes as plain mbTLS (degraded)."""
        plan = FaultPlan(faults=(HostCrash(time=0.012, host="mb0"),), seed=b"c1")
        world = ChaosWorld(pki, rng, plan)
        world.supervise(0.0, request=b"hello")
        world.network.sim.run(until=20.0)
        (supervisor,) = world.supervisors()
        assert supervisor.outcome == "degraded"
        assert supervisor.attempt > 1
        assert supervisor.engine.established
        assert supervisor.engine.middleboxes == ()
        # The degraded session still carried data end to end.
        assert b"hello" in world.server_received

    def test_middlebox_restart_serves_future_sessions(self, pki, rng):
        plan = FaultPlan(
            faults=(HostCrash(time=0.012, host="mb0", restart_after=0.1),),
            seed=b"c2",
        )
        world = ChaosWorld(pki, rng, plan)
        world.supervise(0.0)   # hits the crash, degrades via retry
        world.supervise(2.0)   # after restart: full-strength session
        world.network.sim.run(until=30.0)
        first, second = world.supervisors()
        assert first.outcome in ("degraded", "failed")
        assert second.outcome == "established"
        assert len(second.engine.middleboxes) == 1

    def test_degradation_forbidden_fails_closed(self, pki, rng):
        plan = FaultPlan(faults=(HostCrash(time=0.012, host="mb0"),), seed=b"c3")
        policy = RetryPolicy(handshake_timeout=0.5, max_attempts=3,
                             backoff_base=0.05, allow_degraded=False)
        world = ChaosWorld(pki, rng, plan, policy=policy)
        world.supervise(0.0)
        world.network.sim.run(until=20.0)
        (supervisor,) = world.supervisors()
        assert supervisor.outcome == "failed"
        assert "degraded" in supervisor.failure
        assert supervisor.driver.session_over  # closed, not hanging


class TestStallsAndPartitions:
    def test_stalled_handshake_times_out_then_recovers(self, pki, rng):
        """A stall covering the first dial forces a timeout; the retry
        after the stall window completes."""
        plan = FaultPlan(
            faults=(StreamStall(start=0.0, duration=0.6,
                                hop=frozenset({"client", "mb0"})),),
            seed=b"s1",
        )
        world = ChaosWorld(pki, rng, plan)
        world.supervise(0.001)
        world.network.sim.run(until=30.0)
        (supervisor,) = world.supervisors()
        assert supervisor.outcome == "degraded"  # needed at least one retry
        assert supervisor.attempt > 1

    def test_partition_never_hangs_a_session(self, pki, rng):
        plan = FaultPlan(
            faults=(LinkPartition(start=0.0, duration=60.0,
                                  link=("mb0", "server")),),
            seed=b"p1",
        )
        world = ChaosWorld(pki, rng, plan)
        world.supervise(0.0)
        world.network.sim.run(until=60.0)
        (supervisor,) = world.supervisors()
        assert supervisor.outcome == "failed"
        assert supervisor.attempt == world.policy.max_attempts

    def test_stall_release_preserves_order(self):
        network = Network()
        for name in ("a", "b"):
            network.add_host(name)
        network.add_link("a", "b", 0.001)
        plan = FaultPlan(
            faults=(StreamStall(start=0.0, duration=0.05),), seed=b"o1"
        )
        FaultInjector(network, plan)
        received = []
        network.host("b").listen(
            80, lambda sock, src: sock.on_data(received.append)
        )
        socket = network.host("a").connect("b", 80)
        network.sim.run(until=0.004)
        socket.send(b"one")
        socket.send(b"two")
        network.sim.run()
        assert b"".join(received) == b"onetwo"
        assert network.sim.now >= 0.05  # held until the stall lifted


class TestChaosDeterminism:
    def test_same_seed_same_outcomes(self, pki):
        outcomes_a, log_a = run_chaos(pki, b"determinism-seed")
        outcomes_b, log_b = run_chaos(pki, b"determinism-seed")
        assert outcomes_a == outcomes_b
        assert log_a == log_b

    def test_every_session_reaches_a_terminal_outcome(self, pki):
        outcomes, _ = run_chaos(pki, b"conclusive-seed")
        assert len(outcomes) == 4
        for outcome, attempt, failure in outcomes:
            assert outcome in ("established", "degraded", "failed"), (
                outcome, attempt, failure,
            )


class TestChaosTapUnits:
    def test_loss_burst_drops_within_window_only(self):
        network = Network()
        for name in ("a", "b"):
            network.add_host(name)
        network.add_link("a", "b", 0.001)
        plan = FaultPlan(
            faults=(LossBurst(start=0.01, duration=0.02, rate=1.0),), seed=b"l1"
        )
        injector = FaultInjector(network, plan)
        received = []
        network.host("b").listen(
            80, lambda sock, src: sock.on_data(received.append)
        )
        socket = network.host("a").connect("b", 80)
        network.sim.run(until=0.005)
        socket.send(b"before")       # outside the window: delivered
        network.sim.run(until=0.015)
        socket.send(b"during")       # inside: dropped
        network.sim.run(until=0.05)
        socket.send(b"after")        # after: delivered
        network.sim.run()
        assert b"".join(received) == b"beforeafter"
        assert [f.kind for f in injector.log] == ["loss"]

    def test_corruption_burst_flips_exactly_one_byte(self):
        network = Network()
        for name in ("a", "b"):
            network.add_host(name)
        network.add_link("a", "b", 0.001)
        plan = FaultPlan(
            faults=(CorruptionBurst(start=0.0, duration=1.0, rate=1.0),),
            seed=b"x1",
        )
        injector = FaultInjector(network, plan)
        received = []
        network.host("b").listen(
            80, lambda sock, src: sock.on_data(received.append)
        )
        socket = network.host("a").connect("b", 80)
        network.sim.run(until=0.004)
        original = b"payload-bytes"
        socket.send(original)
        network.sim.run()
        (chunk,) = received
        assert len(chunk) == len(original)
        assert sum(1 for x, y in zip(chunk, original) if x != y) == 1
        assert [f.kind for f in injector.log] == ["corrupt"]
