"""AES block cipher: oracle cross-checks, key schedule, error handling."""

import pytest
from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, _SBOX
from repro.errors import CryptoError


def oracle_encrypt(key: bytes, block: bytes) -> bytes:
    encryptor = Cipher(algorithms.AES(key), modes.ECB()).encryptor()
    return encryptor.update(block) + encryptor.finalize()


class TestSbox:
    def test_sbox_known_values(self):
        # FIPS 197 spot checks: S(0x00)=0x63, S(0x01)=0x7c, S(0x53)=0xed.
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED

    def test_sbox_is_permutation(self):
        assert sorted(_SBOX) == list(range(256))


class TestAgainstOracle:
    @pytest.mark.parametrize("key_length", [16, 24, 32])
    def test_random_blocks_match_oracle(self, key_length, rng):
        for _ in range(20):
            key = rng.random_bytes(key_length)
            block = rng.random_bytes(16)
            assert AES(key).encrypt_block(block) == oracle_encrypt(key, block)

    def test_all_zero_input(self, rng):
        key = bytes(32)
        block = bytes(16)
        assert AES(key).encrypt_block(block) == oracle_encrypt(key, block)

    @settings(max_examples=50, deadline=None)
    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    def test_property_matches_oracle(self, key, block):
        assert AES(key).encrypt_block(block) == oracle_encrypt(key, block)


class TestErrors:
    @pytest.mark.parametrize("bad_length", [0, 8, 15, 17, 33, 64])
    def test_bad_key_length_rejected(self, bad_length):
        with pytest.raises(CryptoError):
            AES(b"k" * bad_length)

    @pytest.mark.parametrize("bad_length", [0, 15, 17, 32])
    def test_bad_block_length_rejected(self, bad_length):
        cipher = AES(b"k" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"b" * bad_length)


class TestDeterminism:
    def test_same_key_same_block_same_output(self):
        cipher = AES(b"0123456789abcdef")
        block = b"fedcba9876543210"
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

    def test_key_sensitivity(self):
        block = bytes(16)
        out1 = AES(b"\x00" * 16).encrypt_block(block)
        out2 = AES(b"\x00" * 15 + b"\x01").encrypt_block(block)
        assert out1 != out2

    def test_block_sensitivity(self):
        cipher = AES(bytes(16))
        assert cipher.encrypt_block(bytes(16)) != cipher.encrypt_block(
            b"\x00" * 15 + b"\x01"
        )


class TestCtrKeystream:
    """The bitsliced bulk CTR path against the scalar block cipher."""

    def _scalar_keystream(self, cipher, prefix, counter, nblocks):
        return b"".join(
            cipher.encrypt_block(
                prefix + (((counter + j) & 0xFFFFFFFF)).to_bytes(4, "big")
            )
            for j in range(nblocks)
        )

    # Block counts straddling the bitslice cutover (16) and the padding
    # to multiples of 8 inside the bitsliced engine.
    @pytest.mark.parametrize("nblocks", [1, 7, 8, 15, 16, 17, 23, 64, 100])
    @pytest.mark.parametrize("key_length", [16, 24, 32])
    def test_matches_scalar_blocks(self, key_length, nblocks, rng):
        cipher = AES(rng.random_bytes(key_length))
        prefix = rng.random_bytes(12)
        assert cipher.ctr_keystream(prefix, 2, nblocks) == self._scalar_keystream(
            cipher, prefix, 2, nblocks
        )

    def test_counter_wraps_at_32_bits(self, rng):
        cipher = AES(rng.random_bytes(16))
        prefix = rng.random_bytes(12)
        start = 0xFFFFFFF0
        assert cipher.ctr_keystream(prefix, start, 32) == self._scalar_keystream(
            cipher, prefix, start, 32
        )

    def test_zero_blocks(self, rng):
        assert AES(rng.random_bytes(16)).ctr_keystream(b"\x00" * 12, 2, 0) == b""

    def test_bad_prefix_rejected(self, rng):
        with pytest.raises(CryptoError):
            AES(rng.random_bytes(16)).ctr_keystream(b"\x00" * 11, 2, 4)

    def test_bitsliced_engine_is_cached(self, rng):
        cipher = AES(rng.random_bytes(16))
        prefix = rng.random_bytes(12)
        cipher.ctr_keystream(prefix, 2, 64)
        engine = cipher._bitsliced
        assert engine is not None
        cipher.ctr_keystream(prefix, 2, 64)
        assert cipher._bitsliced is engine
