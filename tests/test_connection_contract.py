"""Conformance suite for the shared sans-IO connection contract.

Every party in the tree — the plain TLS engines, all three mbTLS engines,
and every baseline — implements :class:`repro.io.Connection` or
:class:`repro.io.DuplexConnection`. These tests pin the contract documented
in ``repro/io/connection.py``:

* ``start()`` is once-only: a second call raises ``ProtocolError`` and
  produces no output;
* ``data_to_send()`` drains: an immediate second call returns ``b""``;
* receiving bytes after close yields no events;
* ``close()`` and ``peer_closed*()`` are idempotent;
* sending application data on a closed connection raises ``ProtocolError``;
* the same DRBG seed yields byte-identical wire transcripts (golden hashes
  captured before the record-plane refactor).
"""

from __future__ import annotations

import hashlib

import pytest

from helpers import MbTLSScenario, identity
from repro.baselines.blindbox import (
    BlindBoxDetector,
    BlindBoxInspectorConnection,
    BlindBoxStreamConnection,
    RuleAuthority,
    TokenStream,
)
from repro.baselines.mctls import (
    ContextPermission,
    McTLSMiddleboxConnection,
    McTLSRecordConnection,
    McTLSSession,
)
from repro.baselines.mdtls import MdTLSDeployment
from repro.baselines.relay import SpliceRelay
from repro.baselines.shared_key import KeySharingConnection, KeySharingMiddlebox
from repro.baselines.split_tls import SplitTLSMiddlebox
from repro.bench.scenarios import Pki
from repro.core.client import MbTLSClientEngine
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole
from repro.core.middlebox import MbTLSMiddlebox
from repro.core.server import MbTLSServerEngine
from repro.crypto.drbg import HmacDrbg
from repro.errors import ProtocolError
from repro.io import Connection, DuplexConnection, pump
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine

# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def _tls_pair(pki, rng):
    client = TLSClientEngine(
        TLSConfig(rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server")
    )
    server = TLSServerEngine(
        TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server"))
    )
    return client, server


def _mbtls_pair(pki, rng):
    client = MbTLSClientEngine(
        MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server"
            ),
            middlebox_trust_store=pki.trust,
        )
    )
    server = MbTLSServerEngine(
        MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server")),
            middlebox_trust_store=pki.trust,
        )
    )
    return client, server


def _mctls_pair(pki, rng):
    session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), [1])
    return (
        McTLSRecordConnection(session.endpoint_party(), default_context=1),
        McTLSRecordConnection(session.endpoint_party(), default_context=1),
    )


def _mdtls_deployment(pki, rng, middleboxes=()):
    return MdTLSDeployment(
        rng=rng.fork(b"mdtls"),
        trust_store=pki.trust,
        client_credential=pki.credential("client"),
        server_credential=pki.credential("server"),
        middleboxes=[(name, pki.credential(name)) for name in middleboxes],
    )


def _mdtls_pair(pki, rng):
    deployment = _mdtls_deployment(pki, rng)
    return deployment.build_client(), deployment.build_server()


def _blindbox_pair(pki, rng):
    key = rng.fork(b"tok").random_bytes(32)
    return (
        BlindBoxStreamConnection(TokenStream(key)),
        BlindBoxStreamConnection(TokenStream(key)),
    )


# Each case: (pair factory, needs_pump). ``needs_pump`` marks pairs with a
# handshake to run before application data may flow.
ENDPOINT_CASES = {
    "tls": (_tls_pair, True),
    "mbtls": (_mbtls_pair, True),
    "mctls": (_mctls_pair, False),
    "mdtls": (_mdtls_pair, True),
    "blindbox": (_blindbox_pair, False),
}


def _mbtls_middlebox(pki, rng):
    return MbTLSMiddlebox(
        MiddleboxConfig(
            name="mbox",
            tls=TLSConfig(rng=rng.fork(b"mb"), credential=pki.credential("mbox")),
            role=MiddleboxRole.AUTO,
            process=identity,
        ),
        destination="server",
    )


def _stimulate_mbtls(middlebox, pki, rng):
    client = MbTLSClientEngine(
        MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server"
            ),
            middlebox_trust_store=pki.trust,
        )
    )
    client.start()
    middlebox.receive_down(client.data_to_send())


def _mdtls_middlebox(pki, rng):
    deployment = _mdtls_deployment(pki, rng, middleboxes=("mbox",))
    conn = deployment.build_middlebox(0)
    conn._deployment = deployment
    return conn


def _stimulate_mdtls(conn, pki, rng):
    client = conn._deployment.build_client()
    client.start()
    conn.receive_down(client.data_to_send())


def _split_tls(pki, rng):
    return SplitTLSMiddlebox(
        pki.ca, "server", rng.fork(b"split"), upstream_trust=pki.trust
    )


def _key_sharing(pki, rng):
    return KeySharingConnection(KeySharingMiddlebox())


def _mctls_inspector(pki, rng):
    session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), [1])
    conn = McTLSMiddleboxConnection(
        session.middlebox_party({1: ContextPermission.READ})
    )
    conn._endpoint = McTLSRecordConnection(session.endpoint_party(), 1)
    return conn


def _stimulate_mctls(conn, pki, rng):
    conn._endpoint.start()
    conn._endpoint.send_application_data(b"inspect me")
    conn.receive_down(conn._endpoint.data_to_send())


def _blindbox_inspector(pki, rng):
    key = rng.fork(b"tok").random_bytes(32)
    authority = RuleAuthority(key)
    detector = BlindBoxDetector([authority.encrypt_rule("rule", b"suspicious")])
    conn = BlindBoxInspectorConnection(detector)
    conn._endpoint = BlindBoxStreamConnection(TokenStream(key))
    return conn


def _stimulate_blindbox(conn, pki, rng):
    conn._endpoint.start()
    conn._endpoint.send_application_data(b"nothing suspicious here")
    conn.receive_down(conn._endpoint.data_to_send())


def _stimulate_raw(conn, pki, rng):
    # A well-formed APPLICATION_DATA record (relays parse record framing).
    conn.receive_down(b"\x17\x03\x03\x00\x03abc")


# Each case: (factory, stimulate). ``stimulate`` makes the duplex queue
# outbound bytes so the drain contract can be observed (None: start() alone
# already produces output).
DUPLEX_CASES = {
    "mbtls_middlebox": (_mbtls_middlebox, _stimulate_mbtls),
    "mdtls_middlebox": (_mdtls_middlebox, _stimulate_mdtls),
    "split_tls": (_split_tls, None),
    "splice_relay": (lambda pki, rng: SpliceRelay(), _stimulate_raw),
    "shared_key": (_key_sharing, _stimulate_raw),
    "mctls_inspector": (_mctls_inspector, _stimulate_mctls),
    "blindbox_inspector": (_blindbox_inspector, _stimulate_blindbox),
}


@pytest.fixture
def make_pair(pki, rng):
    def factory(name):
        build, needs_pump = ENDPOINT_CASES[name]
        a, b = build(pki, rng)
        return a, b, needs_pump

    return factory


@pytest.fixture
def make_duplex(pki, rng):
    def factory(name):
        build, stimulate = DUPLEX_CASES[name]
        conn = build(pki, rng)
        return conn, (
            (lambda: stimulate(conn, pki, rng)) if stimulate is not None else None
        )

    return factory


# ---------------------------------------------------------------------------
# Endpoint (Connection) contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ENDPOINT_CASES)
class TestConnectionContract:
    def test_satisfies_protocol(self, make_pair, name):
        a, b, _ = make_pair(name)
        assert isinstance(a, Connection)
        assert isinstance(b, Connection)

    def test_start_twice_raises_without_output(self, make_pair, name):
        a, _, _ = make_pair(name)
        a.start()
        a.data_to_send()  # drain whatever start legitimately queued
        with pytest.raises(ProtocolError):
            a.start()
        assert a.data_to_send() == b""

    def test_data_to_send_drains(self, make_pair, name):
        a, b, needs_pump = make_pair(name)
        a.start()
        b.start()
        if needs_pump:
            pump(a, b)
        a.send_application_data(b"drain me")
        first = a.data_to_send()
        assert first != b""
        assert a.data_to_send() == b""

    def test_close_is_idempotent(self, make_pair, name):
        a, b, needs_pump = make_pair(name)
        a.start()
        b.start()
        if needs_pump:
            pump(a, b)
        a.close()
        a.data_to_send()
        a.close()  # second close: no error, no new output
        assert a.data_to_send() == b""
        assert a.closed

    def test_send_after_close_raises(self, make_pair, name):
        a, b, needs_pump = make_pair(name)
        a.start()
        b.start()
        if needs_pump:
            pump(a, b)
        a.close()
        with pytest.raises(ProtocolError):
            a.send_application_data(b"too late")

    def test_receive_after_close_yields_nothing(self, make_pair, name):
        a, b, needs_pump = make_pair(name)
        a.start()
        b.start()
        if needs_pump:
            pump(a, b)
        b.send_application_data(b"in flight")
        wire = b.data_to_send()
        a.close()
        a.data_to_send()
        assert a.receive_bytes(wire) == []

    def test_peer_closed_is_idempotent(self, make_pair, name):
        a, _, _ = make_pair(name)
        a.start()
        first = a.peer_closed()
        assert isinstance(first, list)
        assert a.closed
        assert a.peer_closed() == []


# ---------------------------------------------------------------------------
# Middlebox (DuplexConnection) contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", DUPLEX_CASES)
class TestDuplexConnectionContract:
    def test_satisfies_protocol(self, make_duplex, name):
        conn, _ = make_duplex(name)
        assert isinstance(conn, DuplexConnection)

    def test_start_twice_raises(self, make_duplex, name):
        conn, _ = make_duplex(name)
        conn.start()
        with pytest.raises(ProtocolError):
            conn.start()

    def test_output_drains(self, make_duplex, name):
        conn, stimulate = make_duplex(name)
        conn.start()
        if stimulate is not None:
            stimulate()
        produced = conn.data_to_send_down() + conn.data_to_send_up()
        assert produced != b""
        assert conn.data_to_send_down() == b""
        assert conn.data_to_send_up() == b""

    def test_peer_closed_down_is_idempotent(self, make_duplex, name):
        conn, _ = make_duplex(name)
        conn.start()
        first = conn.peer_closed_down()
        assert isinstance(first, list)
        assert conn.peer_closed_down() == []

    def test_peer_closed_up_is_idempotent(self, make_duplex, name):
        conn, _ = make_duplex(name)
        conn.start()
        first = conn.peer_closed_up()
        assert isinstance(first, list)
        assert conn.peer_closed_up() == []

    def test_receive_after_close_yields_nothing(self, make_duplex, name):
        conn, _ = make_duplex(name)
        conn.start()
        conn.peer_closed_down()
        assert conn.receive_down(b"\x17\x03\x03\x00\x03abc") == []
        assert conn.receive_up(b"\x17\x03\x03\x00\x03abc") == []


# ---------------------------------------------------------------------------
# Transcript determinism — golden hashes captured BEFORE the record-plane
# refactor. If any of these change, the sans-IO core changed observable
# behavior, which this refactor promised not to do.
# ---------------------------------------------------------------------------


class _WireTap:
    """Wraps a Connection so pump() traffic can be hashed and event-ordered."""

    def __init__(self, inner, tag: bytes, wire, event_log: list) -> None:
        self._inner = inner
        self._tag = tag
        self._wire = wire
        self._log = event_log

    def data_to_send(self) -> bytes:
        data = self._inner.data_to_send()
        if data:
            self._wire.update(self._tag + data)
        return data

    def receive_bytes(self, data: bytes) -> list:
        events = self._inner.receive_bytes(data)
        side = "client" if self._tag == b"C" else "server"
        self._log += [(side, type(event).__name__) for event in events]
        return events


def test_tls_transcript_golden():
    rng = HmacDrbg(b"golden-determinism")
    pki = Pki(rng=rng.fork(b"pki"))
    client = TLSClientEngine(
        TLSConfig(rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server")
    )
    server = TLSServerEngine(
        TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server"))
    )
    client.start()
    server.start()

    wire = hashlib.sha256()
    events: list = []
    pump(
        _WireTap(client, b"C", wire, events),
        _WireTap(server, b"S", wire, events),
    )
    client.send_application_data(b"hello determinism")
    data = client.data_to_send()
    wire.update(b"C" + data)
    events += [("server", type(e).__name__) for e in server.receive_bytes(data)]

    assert events == [
        ("server", "HandshakeComplete"),
        ("client", "HandshakeComplete"),
        ("server", "ApplicationData"),
    ]
    assert (
        hashlib.sha256(b"".join(client._transcript)).hexdigest()
        == "d82ea685d71b3cf4a47842b93c37eae65202ea2fb5868d1f71b0c2c7ae99817e"
    )
    assert (
        hashlib.sha256(client.master_secret).hexdigest()
        == "267684709696ef657691f466362dcf03ebb6059eaf4aca974d901a3e988d3a47"
    )
    assert (
        wire.hexdigest()
        == "512e83a045db37e41c54cb971b6dfe3428e5d7dc47c8b3b272683f6507ce0e7b"
    )


def test_mdtls_transcript_golden():
    """One-middlebox mdTLS run: same seed, byte-identical wire transcript."""
    rng = HmacDrbg(b"golden-mdtls")
    pki = Pki(rng=rng.fork(b"pki"))
    deployment = MdTLSDeployment(
        rng=rng.fork(b"deploy"),
        trust_store=pki.trust,
        client_credential=pki.credential("client"),
        server_credential=pki.credential("server"),
        middleboxes=[("mbox", pki.credential("mbox"))],
    )
    client = deployment.build_client()
    middlebox = deployment.build_middlebox(0)
    server = deployment.build_server()
    client.start()
    middlebox.start()
    server.start()

    wire = hashlib.sha256()
    events: list = []
    for _ in range(12):
        progressed = False
        data = client.data_to_send()
        if data:
            wire.update(b"C" + data)
            middlebox.receive_down(data)
            progressed = True
        data = middlebox.data_to_send_up()
        if data:
            wire.update(b"MU" + data)
            events += [
                ("server", type(e).__name__) for e in server.receive_bytes(data)
            ]
            progressed = True
        data = server.data_to_send()
        if data:
            wire.update(b"S" + data)
            middlebox.receive_up(data)
            progressed = True
        data = middlebox.data_to_send_down()
        if data:
            wire.update(b"MD" + data)
            events += [
                ("client", type(e).__name__) for e in client.receive_bytes(data)
            ]
            progressed = True
        if not progressed:
            break

    assert events == [
        ("server", "HandshakeComplete"),
        ("client", "HandshakeComplete"),
    ]
    assert client.established and middlebox.established and server.established

    client.send_application_data(b"GOLDEN-MDTLS")
    data = client.data_to_send()
    wire.update(b"C" + data)
    middlebox.receive_down(data)
    data = middlebox.data_to_send_up()
    wire.update(b"MU" + data)
    received = server.receive_bytes(data)
    assert [type(e).__name__ for e in received] == ["ApplicationData"]
    assert received[0].data == b"GOLDEN-MDTLS"

    assert (
        hashlib.sha256(bytes(client._transcript)).hexdigest()
        == "2f4692cb2a98ca7a53d89b6702364251b4eb17b48223733786a0597c67261603"
    )
    assert (
        wire.hexdigest()
        == "270422efa68c48c3253846fc7095321e2da9b1564fbca0b6ce51c33bd63d51eb"
    )


def test_mbtls_transcript_golden():
    rng = HmacDrbg(b"golden-mbtls")
    pki = Pki(rng=rng.fork(b"pki"))
    scenario = MbTLSScenario(
        pki=pki,
        rng=rng,
        mbox_specs=[("mbox", MiddleboxRole.AUTO, identity, {})],
    ).run_client(b"GOLDEN-PING")

    assert [type(e).__name__ for e in scenario.events] == [
        "MiddleboxJoined",
        "SessionEstablished",
        "ApplicationData",
    ]
    assert [type(e).__name__ for e in scenario.server_events] == [
        "SessionEstablished",
        "ApplicationData",
    ]
    assert scenario.client_received == [b"REPLY:GOLDEN-PING"]
    assert (
        hashlib.sha256(
            b"".join(scenario.client_engine.primary._transcript)
        ).hexdigest()
        == "e51bf3a6aa57325822a341543bcbf6bbb77aecfef63a32e506e4982a5e84c565"
    )
    combined = hashlib.sha256()
    for event in scenario.events:
        combined.update(type(event).__name__.encode())
    for event in scenario.server_events:
        combined.update(type(event).__name__.encode())
    for chunk in scenario.client_received:
        combined.update(chunk)
    assert (
        combined.hexdigest()
        == "2b4c05c8b432dabd954e14e985ae154e97656867c5fb5473a741cb9187896c15"
    )
