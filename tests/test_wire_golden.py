"""Golden-byte pins for the mbTLS wire formats (Appendix A).

These tests freeze the exact on-the-wire encodings — the protocol constants
from the paper's appendix and this implementation's layout choices — so an
accidental format change cannot slip through refactoring.
"""

from repro.wire.alerts import Alert, AlertDescription, AlertLevel
from repro.wire.extensions import ExtensionType, MiddleboxSupportExtension
from repro.wire.handshake import Handshake, HandshakeType, SGXAttestation
from repro.wire.mbtls import EncapsulatedRecord, HopKeys, KeyMaterial, MiddleboxAnnouncement
from repro.wire.records import ContentType, Record


class TestAppendixAConstants:
    def test_content_type_code_points(self):
        """Appendix A.1: mbtls_encapsulated(30), mbtls_key_material(31),
        mbtls_middlebox_announcement(32)."""
        assert int(ContentType.MBTLS_ENCAPSULATED) == 30
        assert int(ContentType.MBTLS_KEY_MATERIAL) == 31
        assert int(ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT) == 32

    def test_standard_content_types(self):
        assert int(ContentType.CHANGE_CIPHER_SPEC) == 20
        assert int(ContentType.ALERT) == 21
        assert int(ContentType.HANDSHAKE) == 22
        assert int(ContentType.APPLICATION_DATA) == 23

    def test_sgx_attestation_handshake_type(self):
        """Appendix A.2: sgx_attestation(17)."""
        assert int(HandshakeType.SGX_ATTESTATION) == 17

    def test_standard_handshake_types(self):
        assert int(HandshakeType.CLIENT_HELLO) == 1
        assert int(HandshakeType.SERVER_HELLO) == 2
        assert int(HandshakeType.CERTIFICATE) == 11
        assert int(HandshakeType.FINISHED) == 20


class TestGoldenBytes:
    def test_record_header(self):
        record = Record(ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT, b"")
        assert record.encode() == bytes.fromhex("2003030000")

    def test_announcement_in_encapsulated(self):
        """Announcements always ride Encapsulated records; the full outer
        bytes for subchannel 1 are fixed."""
        encap = EncapsulatedRecord(
            subchannel_id=1, inner=MiddleboxAnnouncement().to_record()
        )
        assert encap.to_record().encode() == bytes.fromhex(
            "1e" "0303" "0006" "01" "2003030000"
        )

    def test_encapsulated_layout(self):
        """Outer record: type 30 | version | len | subchannel | inner record."""
        inner = Record(ContentType.HANDSHAKE, b"AB")
        encap = EncapsulatedRecord(subchannel_id=7, inner=inner)
        assert encap.to_record().encode() == bytes.fromhex(
            "1e" "0303" "0008" "07" "16" "0303" "0002" "4142"
        )

    def test_alert_bytes(self):
        alert = Alert(AlertLevel.FATAL, AlertDescription.BAD_RECORD_MAC)
        assert alert.encode() == bytes.fromhex("0214")
        assert Alert.close_notify().encode() == bytes.fromhex("0100")

    def test_sgx_attestation_message(self):
        message = SGXAttestation(quote=b"\xaa\xbb")
        framed = Handshake(message.msg_type, message.encode_body()).encode()
        assert framed == bytes.fromhex("11" "000004" "0002" "aabb")

    def test_middlebox_support_extension_bytes(self):
        extension = MiddleboxSupportExtension(
            client_hellos=(b"\x01\x02",), middleboxes=("mb",)
        ).to_extension()
        assert extension.extension_type == 0xFF01
        assert extension.encode() == bytes.fromhex(
            "ff01"          # extension type
            "000a"          # extension data length
            "01"            # numHellos
            "0002"          # helloLengths[0]
            "0102"          # clientHellos[0]
            "01"            # numMboxes
            "00026d62"      # "mb" with u16 length prefix
        )

    def test_key_material_layout(self):
        hop = HopKeys(
            cipher_suite=0xC030,
            client_write_key=b"\x11" * 4,   # shortened keys for readability
            client_write_iv=b"\x22" * 2,
            server_write_key=b"\x33" * 4,
            server_write_iv=b"\x44" * 2,
            client_to_server_seq=1,
            server_to_client_seq=2,
        )
        expected_hop = bytes.fromhex(
            "0303"                  # version
            "0000000000000001"      # client_to_server_sequence
            "0000000000000002"      # server_to_client_sequence
            "c030"                  # cipher_suite
            "00000004"              # key_len
            "00000002"              # iv_len
            "11111111" "2222"       # clientWriteKey/IV
            "33333333" "4444"       # serverWriteKey/IV
        )
        assert hop.encode() == expected_hop
        material = KeyMaterial(toward_client=hop, toward_server=hop)
        payload = material.encode_payload()
        assert payload == (
            len(expected_hop).to_bytes(3, "big") + expected_hop
        ) * 2
        assert material.to_record().content_type == ContentType.MBTLS_KEY_MATERIAL

    def test_middlebox_support_extension_code_point(self):
        assert int(ExtensionType.MIDDLEBOX_SUPPORT) == 0xFF01
        assert int(ExtensionType.ATTESTATION_REQUEST) == 0xFF02
