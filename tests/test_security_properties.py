"""The paper's security properties P1-P4 as executable assertions.

Each test runs a concrete attack from the §3.1 threat model (via the
Table 1 scenario module) and asserts the documented outcome — including the
deliberate *vulnerabilities* of the baselines, and §4.2's cache-poisoning
caveat for mbTLS itself.
"""


from helpers import MbTLSScenario, identity
from repro.bench import threats
from repro.core.config import MiddleboxRole
from repro.core.keys import states_from_hop_keys
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode, Platform
from repro.tls.ciphersuites import suite_by_code


class TestTable1Matrix:
    """One assertion per Table 1 row."""

    def test_wire_secrecy_tls(self):
        assert threats.wire_secrecy_tls().defended

    def test_wire_secrecy_mbtls(self):
        assert threats.wire_secrecy_mbtls().defended

    def test_mip_cannot_read_enclave_keys(self):
        assert threats.mip_memory_read(use_enclave=True).defended

    def test_mip_reads_keys_without_enclave(self):
        # The counterfactual: without SGX the MIP sees everything.
        assert not threats.mip_memory_read(use_enclave=False).defended

    def test_change_secrecy_mbtls(self):
        assert threats.change_secrecy("mbtls").defended

    def test_change_secrecy_broken_in_shared_key_baseline(self):
        assert not threats.change_secrecy("shared").defended

    def test_path_integrity_mbtls(self):
        assert threats.path_skip("mbtls").defended

    def test_path_integrity_broken_in_shared_key_baseline(self):
        assert not threats.path_skip("shared").defended

    def test_wire_tampering_rejected(self):
        assert threats.wire_tamper_mbtls().defended

    def test_replay_rejected(self):
        assert threats.replay_mbtls().defended

    def test_impostor_server_rejected(self):
        assert threats.impersonate_server().defended

    def test_wrong_msp_rejected(self):
        assert threats.impersonate_middlebox().defended

    def test_wrong_code_rejected(self):
        assert threats.wrong_middlebox_code().defended

    def test_forward_secrecy_structure(self):
        assert threats.forward_secrecy().defended

    def test_support_stripping_detected(self):
        assert threats.downgrade_strip_support().defended

    def test_forged_announcement_rejected(self):
        assert threats.downgrade_forge_announcement().defended

    def test_replayed_announcement_rejected(self):
        assert threats.downgrade_replay_announcement().defended

    def test_suppressed_announcement_accounted(self):
        assert threats.downgrade_suppress_announcement().defended

    def test_forced_fallback_fails_closed(self):
        assert threats.downgrade_forced_fallback().defended

    def test_expired_delegation_warrant_rejected(self):
        assert threats.mdtls_expired_warrant().defended

    def test_unwarranted_proxy_signature_rejected(self):
        assert threats.mdtls_unwarranted_proxy_signature().defended

    def test_truncated_transcript_signature_rejected(self):
        assert threats.mdtls_truncated_transcript_signature().defended


#: The full Table 1 threat/defense matrix, pinned. A diff here means a
#: security behaviour changed: deliberate (update the snapshot alongside
#: the defense) or a regression (the test caught it). The two ``False``
#: rows are the documented baseline vulnerabilities — flipping one of
#: *those* to True silently would be just as wrong as losing a defense.
TABLE1_SNAPSHOT = [
    ("wire data read by third party", "TLS", True),
    ("wire data read by third party", "mbTLS", True),
    ("session keys read from middlebox memory by MIP", "mbTLS+SGX", True),
    ("session keys read from middlebox memory by MIP", "mbTLS w/o enclave", False),
    ("modification detectable by comparing hops", "mbTLS", True),
    ("modification detectable by comparing hops", "shared-key baseline", False),
    ("record skips the middlebox (path integrity)", "mbTLS", True),
    ("record skips the middlebox (path integrity)", "shared-key baseline", False),
    ("records modified/injected on the wire", "mbTLS", True),
    ("record replayed on its own hop", "mbTLS", True),
    ("key established with impostor server", "TLS/mbTLS", True),
    ("middlebox operated by wrong MSP", "mbTLS", True),
    ("wrong middlebox software (code identity)", "mbTLS", True),
    ("old sessions decrypted after key compromise", "TLS/mbTLS", True),
    ("MiddleboxSupport stripped by on-path box", "mbTLS", True),
    ("forged middlebox announcement injected", "mbTLS", True),
    ("prior-session announcement replayed", "mbTLS", True),
    ("middlebox announcements suppressed", "mbTLS", True),
    ("forced fallback to a weaker party set", "mbTLS", True),
    ("expired delegation warrant presented", "mdTLS", True),
    ("proxy signature by unwarranted key", "mdTLS", True),
    ("proxy signature over truncated transcript", "mdTLS", True),
]


class TestTable1Snapshot:
    def test_full_matrix_matches_snapshot(self):
        outcomes = threats.run_all_threats()
        matrix = [(o.threat, o.protocol, o.defended) for o in outcomes]
        assert matrix == TABLE1_SNAPSHOT


class TestKeyVisibility:
    def test_no_session_secret_in_mip_memory_with_enclave(self, rng, pki):
        """P1A against the MIP: every secret the middlebox's TLS stack
        derives lands in enclave memory, and none is MIP-visible."""
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        enclave = platform.launch_enclave(EnclaveCode("proxy", "1", b"code"))
        arena = platform.arena_for(enclave)

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                (
                    "proxy",
                    MiddleboxRole.CLIENT_SIDE,
                    identity,
                    {"enclave": enclave, "on_secret": arena.store},
                )
            ],
            server_kind="tls",
        ).run_client(b"PING")
        assert scenario.client_received == [b"REPLY:PING"]
        assert len(arena.all_bytes()) > 0, "secrets must have been recorded"
        assert platform.dump_visible_secrets() == set()

    def test_client_hop_keys_never_on_wire_in_clear(self, rng, pki):
        from repro.netsim.adversary import GlobalAdversary

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        )
        adversary = GlobalAdversary(scenario.network)
        scenario.run_client(b"PING")
        observed = adversary.observed_bytes()
        client = scenario.client_engine
        assert client.primary.master_secret not in observed
        assert client.primary.key_block.client_write_key not in observed
        # The hop keys distributed via MBTLSKeyMaterial ride encrypted.
        assert client._data_write.key not in observed
        assert client._data_read.key not in observed


class TestCachePoisoningCaveat:
    """§4.2: a malicious client can poison a shared client-side cache,
    because it knows every hop key on its side."""

    def test_malicious_client_forges_cached_response(self, rng, pki):
        from repro.apps.cache import CacheApp, SharedCacheStore
        from repro.core.keys import bridge_hop_keys
        from repro.netsim.adversary import DroppingTap, GlobalAdversary
        from repro.wire.records import ContentType

        store = SharedCacheStore()

        def http_reply(data: bytes) -> bytes:
            return b"HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\ngenuine!"

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("cache", MiddleboxRole.CLIENT_SIDE, CacheApp(store), {})
            ],
            server_kind="tls",
            server_reply=http_reply,
        )
        adversary = GlobalAdversary(scenario.network)
        scenario.run_client(
            b"GET /page HTTP/1.1\r\nHost: server\r\n\r\n", auto_request=True
        )
        assert store.entries, "the genuine response must have been cached"

        # Paper's recipe (§4.2): (1) request a page, (2) keep the server
        # from answering (drop the forwarded request), (3) inject a forged
        # response under the cache-server hop keys, which the malicious
        # client KNOWS — they are its own primary-session bridge keys.
        hop2 = adversary.wiretap_between("mb0", "server")
        hop2.stream.add_tap(
            DroppingTap(should_drop=lambda data: data[:1] == b"\x17", limit=1)
        )
        scenario.client_driver.send_application_data(
            b"GET /victim HTTP/1.1\r\nHost: server\r\n\r\n"
        )
        scenario.network.sim.run()

        client = scenario.client_engine
        suite = suite_by_code(client.primary.suite.code)
        _, key_block = client.primary.export_key_block()
        bridge = bridge_hop_keys(suite, key_block)
        _, s2c_state = states_from_hop_keys(suite, bridge)
        middlebox = scenario.middlebox_engine()
        s2c_state.sequence = middlebox._s2c_read.sequence
        poison = b"HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\npwned!"
        forged = s2c_state.protect(ContentType.APPLICATION_DATA, poison)
        hop2.inject_toward("mb0", forged.encode())
        scenario.network.sim.run()

        # The shared cache now serves the attacker's content for /victim.
        assert any(
            b"pwned!" in entry.body for entry in store.entries.values()
        ), store.entries
