"""Handshake message codecs and the HandshakeBuffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.wire.extensions import Extension, ServerNameExtension
from repro.wire.handshake import (
    Certificate,
    ClientHello,
    ClientKeyExchange,
    Finished,
    Handshake,
    HandshakeBuffer,
    HandshakeType,
    KexAlgorithm,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    ServerKeyExchange,
    SGXAttestation,
)


class TestClientHello:
    def test_roundtrip(self):
        hello = ClientHello(
            random=b"\x01" * 32,
            session_id=b"\x02" * 16,
            cipher_suites=(0xC030, 0x009F),
            extensions=(ServerNameExtension("example.com").to_extension(),),
        )
        decoded = ClientHello.decode_body(hello.encode_body())
        assert decoded == hello

    def test_no_extensions(self):
        hello = ClientHello(random=b"\x00" * 32, cipher_suites=(1,))
        assert ClientHello.decode_body(hello.encode_body()).extensions == ()

    def test_find_extension(self):
        extension = ServerNameExtension("a.example").to_extension()
        hello = ClientHello(random=b"\x00" * 32, extensions=(extension,))
        assert hello.find_extension(0) == extension
        assert hello.find_extension(9999) is None

    def test_unknown_extension_preserved(self):
        mystery = Extension(extension_type=0xABCD, data=b"future-stuff")
        hello = ClientHello(random=b"\x00" * 32, extensions=(mystery,))
        decoded = ClientHello.decode_body(hello.encode_body())
        assert decoded.extensions == (mystery,)

    def test_rejects_missing_null_compression(self):
        body = bytearray(ClientHello(random=b"\x00" * 32).encode_body())
        # compression vector is right after the (empty) cipher suite vector:
        # version(2) + random(32) + sid_len(1) + suites_len(2) -> comp at 37
        assert body[37] == 1 and body[38] == 0
        body[38] = 1  # replace null with a bogus method
        with pytest.raises(DecodeError):
            ClientHello.decode_body(bytes(body))


class TestServerHello:
    def test_roundtrip(self):
        hello = ServerHello(
            random=b"\x05" * 32, cipher_suite=0xC030, session_id=b"\x06" * 32
        )
        assert ServerHello.decode_body(hello.encode_body()) == hello


class TestCertificateMessage:
    def test_roundtrip(self):
        message = Certificate(chain=(b"leaf-bytes", b"intermediate", b"root"))
        assert Certificate.decode_body(message.encode_body()) == message

    def test_empty_chain(self):
        assert Certificate.decode_body(Certificate(chain=()).encode_body()).chain == ()


class TestServerKeyExchange:
    def test_ecdhe_roundtrip(self):
        params = ServerKeyExchange.encode_ecdhe_params(b"\x07" * 32)
        ske = ServerKeyExchange(
            algorithm=KexAlgorithm.ECDHE_X25519, params=params, signature=b"sig"
        )
        decoded = ServerKeyExchange.decode_body(ske.encode_body())
        assert decoded == ske
        assert decoded.parse_ecdhe_public() == b"\x07" * 32

    def test_dhe_roundtrip(self):
        params = ServerKeyExchange.encode_dhe_params(23, 5, 8)
        ske = ServerKeyExchange(
            algorithm=KexAlgorithm.DHE, params=params, signature=b"sig"
        )
        decoded = ServerKeyExchange.decode_body(ske.encode_body())
        assert decoded.parse_dhe_params() == (23, 5, 8)

    def test_parse_wrong_algorithm_rejected(self):
        params = ServerKeyExchange.encode_dhe_params(23, 5, 8)
        ske = ServerKeyExchange(
            algorithm=KexAlgorithm.DHE, params=params, signature=b""
        )
        with pytest.raises(DecodeError):
            ske.parse_ecdhe_public()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(DecodeError):
            ServerKeyExchange.decode_body(b"\x63" + b"\x00" * 8)


class TestSmallMessages:
    def test_server_hello_done(self):
        assert ServerHelloDone.decode_body(b"") == ServerHelloDone()
        with pytest.raises(DecodeError):
            ServerHelloDone.decode_body(b"x")

    def test_client_key_exchange_roundtrip(self):
        cke = ClientKeyExchange(exchange_data=b"\x08" * 32)
        assert ClientKeyExchange.decode_body(cke.encode_body()) == cke

    def test_finished_length_enforced(self):
        assert Finished.decode_body(b"\x00" * 12).verify_data == b"\x00" * 12
        with pytest.raises(DecodeError):
            Finished.decode_body(b"\x00" * 11)

    def test_sgx_attestation_roundtrip(self):
        message = SGXAttestation(quote=b"quote-bytes" * 10)
        assert SGXAttestation.decode_body(message.encode_body()) == message

    def test_new_session_ticket_roundtrip(self):
        message = NewSessionTicket(lifetime_seconds=3600, ticket=b"opaque")
        assert NewSessionTicket.decode_body(message.encode_body()) == message


class TestHandshakeBuffer:
    def _framed(self, msg_type: HandshakeType, body: bytes) -> bytes:
        return Handshake(msg_type=msg_type, body=body).encode()

    def test_coalesced_messages(self):
        buffer = HandshakeBuffer()
        buffer.feed(
            self._framed(HandshakeType.SERVER_HELLO_DONE, b"")
            + self._framed(HandshakeType.FINISHED, b"\x00" * 12)
        )
        messages = buffer.pop_messages()
        assert [message.msg_type for message in messages] == [
            HandshakeType.SERVER_HELLO_DONE,
            HandshakeType.FINISHED,
        ]

    def test_fragmented_message(self):
        framed = self._framed(HandshakeType.FINISHED, b"\x00" * 12)
        buffer = HandshakeBuffer()
        buffer.feed(framed[:5])
        assert buffer.pop_messages() == []
        buffer.feed(framed[5:])
        assert len(buffer.pop_messages()) == 1

    def test_unknown_type_rejected(self):
        buffer = HandshakeBuffer()
        buffer.feed(b"\x63\x00\x00\x00")
        with pytest.raises(DecodeError):
            buffer.pop_messages()

    @settings(max_examples=50, deadline=None)
    @given(bodies=st.lists(st.binary(max_size=64), min_size=1, max_size=8))
    def test_chunked_reassembly_property(self, bodies):
        stream = b"".join(
            self._framed(HandshakeType.CLIENT_KEY_EXCHANGE, body) for body in bodies
        )
        buffer = HandshakeBuffer()
        received = []
        for index in range(0, len(stream), 7):
            buffer.feed(stream[index : index + 7])
            received += buffer.pop_messages()
        assert [message.body for message in received] == bodies
