"""Asymmetric primitives: X25519 (vs oracle), RSA, finite-field DH."""

import pytest
from cryptography.hazmat.primitives import serialization
from cryptography.hazmat.primitives.asymmetric.x25519 import (
    X25519PrivateKey as OracleX25519,
)

from repro.crypto.dh import DHPrivateKey, modp_group
from repro.crypto.rsa import RSAPublicKey, generate_rsa_key, is_probable_prime
from repro.crypto.x25519 import X25519PrivateKey, x25519, x25519_base
from repro.errors import CryptoError


class TestX25519:
    def test_public_key_matches_oracle(self, rng):
        for _ in range(8):
            private = rng.random_bytes(32)
            oracle = OracleX25519.from_private_bytes(private)
            expected = oracle.public_key().public_bytes(
                serialization.Encoding.Raw, serialization.PublicFormat.Raw
            )
            assert x25519_base(private) == expected

    def test_shared_secret_matches_oracle(self, rng):
        alice = rng.random_bytes(32)
        bob = rng.random_bytes(32)
        oracle_alice = OracleX25519.from_private_bytes(alice)
        oracle_bob = OracleX25519.from_private_bytes(bob)
        expected = oracle_alice.exchange(oracle_bob.public_key())
        assert x25519(alice, x25519_base(bob)) == expected

    def test_exchange_commutes(self, rng):
        alice = X25519PrivateKey(rng.random_bytes(32))
        bob = X25519PrivateKey(rng.random_bytes(32))
        assert alice.exchange(bob.public_bytes) == bob.exchange(alice.public_bytes)

    def test_distinct_peers_distinct_secrets(self, rng):
        alice = X25519PrivateKey(rng.random_bytes(32))
        bob = X25519PrivateKey(rng.random_bytes(32))
        carol = X25519PrivateKey(rng.random_bytes(32))
        assert alice.exchange(bob.public_bytes) != alice.exchange(carol.public_bytes)

    def test_bad_lengths_rejected(self):
        with pytest.raises(CryptoError):
            x25519(b"short", b"\x09" + b"\x00" * 31)
        with pytest.raises(CryptoError):
            x25519(b"\x01" * 32, b"short")

    def test_all_zero_peer_rejected(self, rng):
        # Contributory-behaviour guard: the low-order point yields zero.
        alice = X25519PrivateKey(rng.random_bytes(32))
        with pytest.raises(CryptoError):
            alice.exchange(b"\x00" * 32)


class TestRSA:
    def test_sign_verify_roundtrip(self, rng):
        key = generate_rsa_key(1024, rng)
        signature = key.sign(b"the quick brown fox")
        assert key.public_key.verify(b"the quick brown fox", signature)

    def test_verify_rejects_wrong_message(self, rng):
        key = generate_rsa_key(1024, rng)
        signature = key.sign(b"message one")
        assert not key.public_key.verify(b"message two", signature)

    def test_verify_rejects_corrupted_signature(self, rng):
        key = generate_rsa_key(1024, rng)
        signature = bytearray(key.sign(b"message"))
        signature[10] ^= 0x01
        assert not key.public_key.verify(b"message", bytes(signature))

    def test_verify_rejects_wrong_length(self, rng):
        key = generate_rsa_key(1024, rng)
        assert not key.public_key.verify(b"message", b"\x00" * 10)

    def test_encrypt_decrypt_roundtrip(self, rng):
        key = generate_rsa_key(1024, rng)
        sealed = key.public_key.encrypt(b"pre-master-secret", rng)
        assert key.decrypt(sealed) == b"pre-master-secret"

    def test_decrypt_rejects_garbage(self, rng):
        key = generate_rsa_key(1024, rng)
        with pytest.raises(CryptoError):
            key.decrypt(b"\x01" * key.byte_length)

    def test_encrypt_rejects_oversize(self, rng):
        key = generate_rsa_key(1024, rng)
        with pytest.raises(CryptoError):
            key.public_key.encrypt(b"x" * (key.byte_length - 5), rng)

    def test_public_key_serialization_roundtrip(self, rng):
        key = generate_rsa_key(1024, rng)
        encoded = key.public_key.to_bytes()
        assert RSAPublicKey.from_bytes(encoded) == key.public_key

    def test_keygen_bit_length(self, rng):
        key = generate_rsa_key(1024, rng)
        assert key.n.bit_length() == 1024

    def test_keygen_refuses_tiny_keys(self, rng):
        with pytest.raises(CryptoError):
            generate_rsa_key(256, rng)

    def test_miller_rabin_known_values(self, rng):
        assert is_probable_prime(2**127 - 1, rng)  # Mersenne prime
        assert not is_probable_prime(2**128 - 1, rng)
        assert not is_probable_prime(561, rng)  # Carmichael number
        assert is_probable_prime(2, rng)
        assert not is_probable_prime(1, rng)


class TestDH:
    def test_modp_1024_is_validated_safe_prime(self):
        group = modp_group(1024)
        # The derivation itself Miller-Rabin-checks p and (p-1)/2; re-verify
        # the documented structure here.
        assert group.p.bit_length() == 1024
        assert group.p % 2 == 1
        assert group.g == 2

    def test_modp_known_prefix_suffix(self):
        # All RFC 2412-style MODP primes start and end with 64 one-bits.
        group = modp_group(1024)
        ones = (1 << 64) - 1
        assert group.p >> (1024 - 64) == ones
        assert group.p & ones == ones

    def test_unsupported_size_rejected(self):
        with pytest.raises(CryptoError):
            modp_group(3072)

    def test_exchange_commutes(self, rng):
        group = modp_group(1024)
        alice = DHPrivateKey(group, rng)
        bob = DHPrivateKey(group, rng)
        assert alice.exchange(bob.public_value) == bob.exchange(alice.public_value)

    def test_degenerate_public_values_rejected(self, rng):
        group = modp_group(1024)
        alice = DHPrivateKey(group, rng)
        for bad in (0, 1, group.p - 1, group.p):
            with pytest.raises(CryptoError):
                alice.exchange(bad)

    def test_group_cache_returns_same_object(self):
        assert modp_group(1024) is modp_group(1024)
