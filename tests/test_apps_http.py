"""HTTP substrate: messages, incremental parsing, server/client helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.http import (
    HttpClient,
    HttpParser,
    HttpRequest,
    HttpResponse,
    HttpServerApp,
)
from repro.errors import DecodeError


class TestMessages:
    def test_request_roundtrip(self):
        request = HttpRequest(
            method="POST", path="/submit", headers=[("Host", "x")], body=b"payload"
        )
        parsed = HttpParser(parse_requests=True).feed(request.encode())
        assert len(parsed) == 1
        assert parsed[0].method == "POST"
        assert parsed[0].path == "/submit"
        assert parsed[0].body == b"payload"
        assert parsed[0].header("content-length") == "7"

    def test_response_roundtrip(self):
        response = HttpResponse(status=404, reason="Not Found", body=b"missing")
        parsed = HttpParser(parse_requests=False).feed(response.encode())
        assert parsed[0].status == 404
        assert parsed[0].reason == "Not Found"
        assert parsed[0].body == b"missing"

    def test_header_case_insensitive_lookup(self):
        request = HttpRequest(method="GET", path="/", headers=[("X-Thing", "v")])
        assert request.header("x-thing") == "v"
        assert request.header("missing") is None

    def test_set_header_replaces(self):
        request = HttpRequest(method="GET", path="/", headers=[("Via", "old")])
        request.set_header("Via", "new")
        assert [v for k, v in request.headers if k == "Via"] == ["new"]

    def test_empty_body_no_duplicate_content_length(self):
        request = HttpRequest(method="GET", path="/")
        assert b"Content-Length" not in request.encode()


class TestParser:
    def test_pipelined_requests(self):
        stream = (
            HttpRequest(method="GET", path="/a").encode()
            + HttpRequest(method="GET", path="/b").encode()
        )
        parsed = HttpParser(parse_requests=True).feed(stream)
        assert [request.path for request in parsed] == ["/a", "/b"]

    def test_partial_headers_buffered(self):
        parser = HttpParser(parse_requests=True)
        encoded = HttpRequest(method="GET", path="/x").encode()
        assert parser.feed(encoded[:10]) == []
        assert [r.path for r in parser.feed(encoded[10:])] == ["/x"]

    def test_partial_body_buffered(self):
        parser = HttpParser(parse_requests=True)
        encoded = HttpRequest(method="PUT", path="/x", body=b"0123456789").encode()
        split = len(encoded) - 4
        assert parser.feed(encoded[:split]) == []
        assert parser.feed(encoded[split:])[0].body == b"0123456789"

    def test_malformed_header_rejected(self):
        parser = HttpParser(parse_requests=True)
        with pytest.raises(DecodeError):
            parser.feed(b"GET / HTTP/1.1\r\nbad-header-no-colon\r\n\r\n")

    def test_malformed_request_line_rejected(self):
        parser = HttpParser(parse_requests=True)
        with pytest.raises(DecodeError):
            parser.feed(b"NONSENSE\r\n\r\n")

    @settings(max_examples=40, deadline=None)
    @given(
        body=st.binary(max_size=200),
        chunk=st.integers(min_value=1, max_value=37),
    )
    def test_chunked_feeding_property(self, body, chunk):
        encoded = HttpRequest(method="POST", path="/p", body=body).encode()
        parser = HttpParser(parse_requests=True)
        parsed = []
        for index in range(0, len(encoded), chunk):
            parsed += parser.feed(encoded[index : index + chunk])
        assert len(parsed) == 1 and parsed[0].body == body


class TestServerClient:
    def test_server_app_serves(self):
        app = HttpServerApp(
            lambda request: HttpResponse(status=200, body=request.path.encode())
        )
        sent = []
        app.on_data(HttpClient.get("/hello", "host.example"), sent.append)
        assert app.requests_served == 1
        client = HttpClient()
        responses = client.on_data(sent[0])
        assert responses[0].body == b"/hello"

    def test_client_accumulates_responses(self):
        client = HttpClient()
        stream = (
            HttpResponse(status=200, body=b"one").encode()
            + HttpResponse(status=201, body=b"two").encode()
        )
        client.on_data(stream[:20])
        client.on_data(stream[20:])
        assert [response.status for response in client.responses] == [200, 201]
