"""The §4.2 neighbour-keyed proposal: its trade-off, quantified.

Endpoint keying (mbTLS): the client can forge beyond its middleboxes
(enabling cache poisoning) but authenticates the server directly.
Neighbour keying: poisoning impossible, but the client no longer shares a
key with the server — it must trust the middlebox chain to authenticate it.
"""

import pytest

from repro.core.neighbor import endpoint_keyed, neighbor_keyed


class TestEndpointKeyed:
    def test_client_knows_every_hop(self, rng):
        dist = endpoint_keyed(middlebox_count=2, rng=rng)
        assert all(dist.client.knows_hop(hop) for hop in range(dist.hop_count))

    def test_client_can_bypass_any_middlebox(self, rng):
        dist = endpoint_keyed(middlebox_count=2, rng=rng)
        assert dist.client_can_bypass_middlebox(1)
        assert dist.client_can_bypass_middlebox(2)

    def test_client_authenticates_server_directly(self, rng):
        dist = endpoint_keyed(middlebox_count=2, rng=rng)
        assert dist.client_authenticates_server_directly()

    def test_middleboxes_only_know_adjacent_hops(self, rng):
        dist = endpoint_keyed(middlebox_count=3, rng=rng)
        for index, party in enumerate(dist.parties[1:-1], start=1):
            assert sorted(party.hop_keys) == [index - 1, index]


class TestNeighborKeyed:
    def test_client_knows_only_its_own_hop(self, rng):
        dist = neighbor_keyed(middlebox_count=2, rng=rng)
        assert sorted(dist.client.hop_keys) == [0]

    def test_poisoning_impossible(self, rng):
        dist = neighbor_keyed(middlebox_count=2, rng=rng)
        assert not dist.client_can_bypass_middlebox(1)
        assert not dist.client_can_bypass_middlebox(2)

    def test_tradeoff_no_direct_server_authentication(self, rng):
        """The paper's stated downside of the proposal."""
        dist = neighbor_keyed(middlebox_count=2, rng=rng)
        assert not dist.client_authenticates_server_directly()

    def test_adjacent_parties_agree(self, rng):
        dist = neighbor_keyed(middlebox_count=3, rng=rng)
        for hop in range(dist.hop_count):
            left = dist.parties[hop].hop_keys[hop]
            right = dist.parties[hop + 1].hop_keys[hop]
            assert left == right

    def test_hop_keys_pairwise_distinct(self, rng):
        dist = neighbor_keyed(middlebox_count=3, rng=rng)
        keys = [dist.parties[hop].hop_keys[hop] for hop in range(dist.hop_count)]
        assert len(set(keys)) == len(keys)


class TestComparison:
    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_schemes_disagree_exactly_on_the_tradeoff(self, rng, count):
        endpoint = endpoint_keyed(count, rng)
        neighbor = neighbor_keyed(count, rng)
        assert endpoint.client_can_bypass_middlebox(1)
        assert not neighbor.client_can_bypass_middlebox(1)
        assert endpoint.client_authenticates_server_directly()
        assert not neighbor.client_authenticates_server_directly()
