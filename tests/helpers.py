"""Network-scenario helpers shared by the integration tests."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    SessionEstablished,
)
from repro.core.drivers import MiddleboxService, open_mbtls, serve_mbtls
from repro.netsim.driver import EngineDriver
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ApplicationData, HandshakeComplete


@dataclass
class MbTLSScenario:
    """A configurable linear client-[mboxes]-server world."""

    pki: object
    rng: object
    mbox_specs: list  # list of (name, role, process, extra_tls_kwargs)
    server_kind: str = "mbtls"  # or "tls"
    client_kind: str = "mbtls"  # or "tls"
    server_reply_prefix: bytes = b"REPLY:"
    server_reply: object = None  # callable(data) -> bytes, overrides prefix
    link_latency: float = 0.002
    client_config_kwargs: dict = field(default_factory=dict)
    client_tls_kwargs: dict = field(default_factory=dict)
    server_config_kwargs: dict = field(default_factory=dict)
    mbox_config_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        self.network = Network()
        self.events: list = []
        self.server_events: list = []
        self.client_received: list[bytes] = []
        self.server_received: list[bytes] = []
        self.services: list[MiddleboxService] = []
        hosts = ["client"] + [f"mb{i}" for i in range(len(self.mbox_specs))] + ["server"]
        for host in hosts:
            self.network.add_host(host)
        for a, b in zip(hosts, hosts[1:]):
            self.network.add_link(a, b, self.link_latency)
        self._deploy_middleboxes()
        self._deploy_server()

    def _deploy_middleboxes(self):
        for index, (name, role, process, tls_kwargs) in enumerate(self.mbox_specs):
            def make_config(name=name, role=role, process=process,
                            tls_kwargs=tls_kwargs, index=index):
                return MiddleboxConfig(
                    name=name,
                    tls=TLSConfig(
                        rng=self.rng.fork(b"mb%d" % index),
                        credential=self.pki.credential(name),
                        **tls_kwargs,
                    ),
                    role=role,
                    process=process,
                    **self.mbox_config_kwargs,
                )
            self.services.append(
                MiddleboxService(self.network.host(f"mb{index}"), make_config)
            )

    def _deploy_server(self):
        credential = self.pki.credential("server")
        if self.server_kind == "mbtls":
            def make_config():
                return MbTLSEndpointConfig(
                    tls=TLSConfig(rng=self.rng.fork(b"srv"), credential=credential),
                    middlebox_trust_store=self.pki.trust,
                    **self.server_config_kwargs,
                )

            def on_event(engine, driver, event):
                self.server_events.append(event)
                if isinstance(event, ApplicationData):
                    self.server_received.append(event.data)
                    reply = (
                        self.server_reply(event.data)
                        if self.server_reply is not None
                        else self.server_reply_prefix + event.data
                    )
                    if reply:
                        driver.send_application_data(reply)

            serve_mbtls(self.network.host("server"), make_config, on_event=on_event)
        else:
            def accept(socket, source):
                engine = TLSServerEngine(
                    TLSConfig(rng=self.rng.fork(b"srv"), credential=credential)
                )
                driver = EngineDriver(engine, socket)

                def on_event(event):
                    self.server_events.append(event)
                    if isinstance(event, ApplicationData):
                        self.server_received.append(event.data)
                        reply = (
                            self.server_reply(event.data)
                            if self.server_reply is not None
                            else self.server_reply_prefix + event.data
                        )
                        if reply:
                            driver.send_application_data(reply)

                driver.on_event = on_event
                driver.start()

            self.network.host("server").listen(443, accept)

    def run_client(self, request: bytes = b"PING", auto_request: bool = True):
        """Open the client connection, optionally send a request, run to idle."""

        def on_event(event):
            self.events.append(event)
            if isinstance(event, (SessionEstablished, HandshakeComplete)) and auto_request:
                self.client_driver.send_application_data(request)
            elif isinstance(event, ApplicationData):
                self.client_received.append(event.data)

        if self.client_kind == "mbtls":
            config = MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=self.rng.fork(b"cli"),
                    trust_store=self.pki.trust,
                    server_name="server",
                    **self.client_tls_kwargs,
                ),
                middlebox_trust_store=self.pki.trust,
                **self.client_config_kwargs,
            )
            self.client_engine, self.client_driver = open_mbtls(
                self.network.host("client"), "server", config, on_event=on_event
            )
        else:
            self.client_engine = TLSClientEngine(
                TLSConfig(
                    rng=self.rng.fork(b"cli"),
                    trust_store=self.pki.trust,
                    server_name="server",
                    **self.client_tls_kwargs,
                )
            )
            socket = self.network.host("client").connect("server", 443)
            self.client_driver = EngineDriver(
                self.client_engine, socket, on_event=on_event
            )
            self.client_driver.start()
        self.network.sim.run()
        return self

    @property
    def established_event(self) -> SessionEstablished | None:
        for event in self.events:
            if isinstance(event, SessionEstablished):
                return event
        return None

    def middlebox_engine(self, index: int = 0):
        return self.services[index].drivers[0].engine


def identity(direction: str, data: bytes) -> bytes:
    return data


def tagger(tag: bytes, direction: str = "c2s"):
    """A process callback appending a tag in one direction."""

    def process(d: str, data: bytes) -> bytes:
        return data + tag if d == direction else data

    return process
