"""Fuzz-style robustness: engines must survive hostile or garbage input by
closing cleanly (or ignoring it), never by raising out of receive_bytes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import MbTLSScenario, identity
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole
from repro.core.client import MbTLSClientEngine
from repro.core.middlebox import MbTLSMiddlebox
from repro.crypto.drbg import HmacDrbg
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.wire.records import ContentType, Record


class TestGarbageInput:
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=300))
    def test_tls_server_survives_garbage(self, pki, garbage):
        engine = TLSServerEngine(
            TLSConfig(rng=HmacDrbg(garbage[:8].ljust(8, b"\x00")),
                      credential=pki.credential("server"))
        )
        engine.start()
        engine.receive_bytes(garbage)  # must not raise
        engine.data_to_send()

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=300))
    def test_tls_client_survives_garbage(self, pki, garbage):
        engine = TLSClientEngine(
            TLSConfig(rng=HmacDrbg(b"fuzz"), trust_store=pki.trust,
                      server_name="server")
        )
        engine.start()
        engine.data_to_send()
        engine.receive_bytes(garbage)

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=300))
    def test_mbtls_client_survives_garbage(self, pki, garbage):
        engine = MbTLSClientEngine(
            MbTLSEndpointConfig(
                tls=TLSConfig(rng=HmacDrbg(b"fuzz"), trust_store=pki.trust,
                              server_name="server"),
            )
        )
        engine.start()
        engine.data_to_send()
        engine.receive_bytes(garbage)

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        garbage=st.binary(min_size=1, max_size=300),
        side=st.sampled_from(["down", "up"]),
    )
    def test_middlebox_survives_garbage(self, pki, garbage, side):
        middlebox = MbTLSMiddlebox(
            MiddleboxConfig(
                name="m",
                tls=TLSConfig(rng=HmacDrbg(b"fuzz"),
                              credential=pki.credential("m")),
                role=MiddleboxRole.CLIENT_SIDE,
            ),
            destination="server",
        )
        if side == "down":
            middlebox.receive_down(garbage)
        else:
            middlebox.receive_up(garbage)
        middlebox.data_to_send_down()
        middlebox.data_to_send_up()


class TestHostileRecords:
    def _record_strategy(self):
        return st.builds(
            Record,
            content_type=st.sampled_from(list(ContentType)),
            payload=st.binary(max_size=200),
        )

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(records=st.lists(st.builds(
        Record,
        content_type=st.sampled_from(list(ContentType)),
        payload=st.binary(max_size=200),
    ), min_size=1, max_size=5))
    def test_server_survives_arbitrary_record_sequences(self, pki, records):
        engine = TLSServerEngine(
            TLSConfig(rng=HmacDrbg(b"records"), credential=pki.credential("server"))
        )
        engine.start()
        for record in records:
            engine.receive_bytes(record.encode())
            engine.data_to_send()

    def test_established_session_survives_injected_record_storm(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client(b"PING")
        client = scenario.client_engine
        storm_rng = HmacDrbg(b"storm")
        for _ in range(50):
            content_type = storm_rng.choice(
                [ContentType.APPLICATION_DATA, ContentType.ALERT,
                 ContentType.MBTLS_ENCAPSULATED]
            )
            payload = storm_rng.random_bytes(storm_rng.randint_range(1, 60))
            if content_type == ContentType.MBTLS_ENCAPSULATED:
                payload = bytes([storm_rng.randint_range(0, 255)]) + Record(
                    ContentType.HANDSHAKE, payload
                ).encode()
            client.receive_bytes(Record(content_type, payload).encode())
        # The genuine session still works after the storm.
        if not client.closed:
            scenario.client_driver.send_application_data(b"alive")
            scenario.network.sim.run()
            assert b"alive" in scenario.server_received[-1]
