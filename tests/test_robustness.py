"""Fuzz-style robustness: engines must survive hostile or garbage input by
closing cleanly (or ignoring it), never by raising out of receive_bytes —
during the handshake AND on an established data-phase session."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import MbTLSScenario, identity
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole
from repro.core.client import MbTLSClientEngine
from repro.core.middlebox import MbTLSMiddlebox
from repro.crypto.drbg import HmacDrbg
from repro.netsim.adversary import MutatingTap
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ConnectionClosed
from repro.wire.mbtls import EncapsulatedRecord
from repro.wire.records import ContentType, Record


class TestGarbageInput:
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=300))
    def test_tls_server_survives_garbage(self, pki, garbage):
        engine = TLSServerEngine(
            TLSConfig(rng=HmacDrbg(garbage[:8].ljust(8, b"\x00")),
                      credential=pki.credential("server"))
        )
        engine.start()
        engine.receive_bytes(garbage)  # must not raise
        engine.data_to_send()

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=300))
    def test_tls_client_survives_garbage(self, pki, garbage):
        engine = TLSClientEngine(
            TLSConfig(rng=HmacDrbg(b"fuzz"), trust_store=pki.trust,
                      server_name="server")
        )
        engine.start()
        engine.data_to_send()
        engine.receive_bytes(garbage)

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=300))
    def test_mbtls_client_survives_garbage(self, pki, garbage):
        engine = MbTLSClientEngine(
            MbTLSEndpointConfig(
                tls=TLSConfig(rng=HmacDrbg(b"fuzz"), trust_store=pki.trust,
                              server_name="server"),
            )
        )
        engine.start()
        engine.data_to_send()
        engine.receive_bytes(garbage)

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        garbage=st.binary(min_size=1, max_size=300),
        side=st.sampled_from(["down", "up"]),
    )
    def test_middlebox_survives_garbage(self, pki, garbage, side):
        middlebox = MbTLSMiddlebox(
            MiddleboxConfig(
                name="m",
                tls=TLSConfig(rng=HmacDrbg(b"fuzz"),
                              credential=pki.credential("m")),
                role=MiddleboxRole.CLIENT_SIDE,
            ),
            destination="server",
        )
        if side == "down":
            middlebox.receive_down(garbage)
        else:
            middlebox.receive_up(garbage)
        middlebox.data_to_send_down()
        middlebox.data_to_send_up()


class TestHostileRecords:
    def _record_strategy(self):
        return st.builds(
            Record,
            content_type=st.sampled_from(list(ContentType)),
            payload=st.binary(max_size=200),
        )

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(records=st.lists(st.builds(
        Record,
        content_type=st.sampled_from(list(ContentType)),
        payload=st.binary(max_size=200),
    ), min_size=1, max_size=5))
    def test_server_survives_arbitrary_record_sequences(self, pki, records):
        engine = TLSServerEngine(
            TLSConfig(rng=HmacDrbg(b"records"), credential=pki.credential("server"))
        )
        engine.start()
        for record in records:
            engine.receive_bytes(record.encode())
            engine.data_to_send()

    def test_established_session_survives_injected_record_storm(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client(b"PING")
        client = scenario.client_engine
        storm_rng = HmacDrbg(b"storm")
        for _ in range(50):
            content_type = storm_rng.choice(
                [ContentType.APPLICATION_DATA, ContentType.ALERT,
                 ContentType.MBTLS_ENCAPSULATED]
            )
            payload = storm_rng.random_bytes(storm_rng.randint_range(1, 60))
            if content_type == ContentType.MBTLS_ENCAPSULATED:
                payload = bytes([storm_rng.randint_range(0, 255)]) + Record(
                    ContentType.HANDSHAKE, payload
                ).encode()
            client.receive_bytes(Record(content_type, payload).encode())
        # The genuine session still works after the storm.
        if not client.closed:
            scenario.client_driver.send_application_data(b"alive")
            scenario.network.sim.run()
            assert b"alive" in scenario.server_received[-1]


class TestEstablishedSessionRobustness:
    """Data-phase robustness: hostile bytes on a live session must end in a
    clean close or a dropped record — never an uncaught exception."""

    def _established(self, pki, rng):
        return MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
        ).run_client(b"PING")

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.data_too_large,
        ],
    )
    @given(garbage=st.binary(min_size=1, max_size=120))
    def test_garbage_on_established_subchannel(self, pki, garbage):
        """Garbage wrapped on the middlebox's live subchannel: the
        secondary engine absorbs or closes; the client never raises."""
        scenario = self._established(pki, HmacDrbg(garbage[:16].ljust(4, b"\0")))
        client = scenario.client_engine
        subchannel_id = next(iter(client._secondaries))
        hostile = EncapsulatedRecord(
            subchannel_id=subchannel_id,
            inner=Record(ContentType.HANDSHAKE, garbage),
        )
        client.receive_bytes(hostile.to_record().encode())  # must not raise
        client.data_to_send()

    def test_corrupted_ciphertext_is_dropped_not_fatal(self, pki, rng):
        """Flip a ciphertext byte of the server's reply: the client's AEAD
        rejects the record, drops it, and the session stays usable."""
        scenario = self._established(pki, rng)
        stream = scenario.network.streams[0]  # client <-> mb0 segment

        class FlipPayloadByte(MutatingTap):
            def process(self, sender, data, stream):
                if self.mutations >= 1 or sender.name != "mb0" or len(data) < 10:
                    return data
                self.mutations += 1
                index = len(data) // 2  # inside the ciphertext, not the header
                return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1:]

        stream.add_tap(FlipPayloadByte(mutate=lambda d: d))
        scenario.client_driver.send_application_data(b"probe")
        scenario.network.sim.run()  # must not raise out of the event loop
        client = scenario.client_engine
        assert not client.closed
        assert client.records_dropped >= 1
        # A later, untampered exchange still goes through.
        stream.taps.clear()
        scenario.client_driver.send_application_data(b"again")
        scenario.network.sim.run()
        assert b"again" in scenario.server_received[-1]

    def test_corrupted_record_header_closes_cleanly(self, pki, rng):
        """Flip the record-header byte: framing breaks; the client must
        close with a clean ConnectionClosed, never an exception."""
        scenario = self._established(pki, rng)
        stream = scenario.network.streams[0]

        class FlipHeaderByte(MutatingTap):
            def process(self, sender, data, stream):
                if self.mutations >= 1 or sender.name != "mb0" or not data:
                    return data
                self.mutations += 1
                return bytes([data[0] ^ 0xFF]) + data[1:]

        stream.add_tap(FlipHeaderByte(mutate=lambda d: d))
        before_events = len(scenario.events)
        scenario.client_driver.send_application_data(b"probe")
        scenario.network.sim.run()  # must not raise out of the event loop
        client = scenario.client_engine
        assert client.closed
        assert any(
            isinstance(e, ConnectionClosed)
            for e in scenario.events[before_events:]
        )

    def test_half_open_close_propagates_through_middlebox(self, pki, rng):
        """Abruptly closing the client's socket (no TLS goodbye) must shut
        down the onward segment with a clean close_notify, not leave the
        server half-open forever."""
        scenario = self._established(pki, rng)
        scenario.client_driver.socket.close()
        scenario.network.sim.run()
        mb_driver = scenario.services[0].drivers[0]
        assert mb_driver.engine.closed
        assert mb_driver.up is not None and mb_driver.up.closed
        closes = [
            e for e in scenario.server_events if isinstance(e, ConnectionClosed)
        ]
        assert closes and closes[-1].error is None  # close_notify, not a hang

    def test_server_side_close_propagates_down(self, pki, rng):
        """Server host dies abruptly: the middlebox must notice its upstream
        socket reset and hand the client a clean close_notify."""
        scenario = self._established(pki, rng)
        mb_driver = scenario.services[0].drivers[0]
        scenario.network.crash_host("server")
        scenario.network.sim.run()
        assert mb_driver.engine.closed
        assert mb_driver.down.closed
        closes = [e for e in scenario.events if isinstance(e, ConnectionClosed)]
        assert closes and closes[-1].error is None
