"""Record framing and the incremental RecordBuffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.wire.records import (
    MAX_FRAGMENT,
    ContentType,
    Record,
    RecordBuffer,
)


class TestRecord:
    def test_encode_decode_roundtrip(self):
        record = Record(ContentType.HANDSHAKE, b"payload")
        assert Record.decode(record.encode()) == record

    def test_header_layout(self):
        record = Record(ContentType.ALERT, b"\x01\x02")
        assert record.encode() == b"\x15\x03\x03\x00\x02\x01\x02"

    def test_mbtls_content_types_roundtrip(self):
        for content_type in (
            ContentType.MBTLS_ENCAPSULATED,
            ContentType.MBTLS_KEY_MATERIAL,
            ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT,
        ):
            record = Record(content_type, b"x")
            assert Record.decode(record.encode()).content_type == content_type

    def test_unknown_content_type_rejected(self):
        with pytest.raises(DecodeError):
            Record.decode(b"\x63\x03\x03\x00\x00")

    def test_trailing_bytes_rejected(self):
        data = Record(ContentType.HANDSHAKE, b"x").encode() + b"junk"
        with pytest.raises(DecodeError):
            Record.decode(data)

    def test_oversize_payload_rejected(self):
        huge = (MAX_FRAGMENT + 2048).to_bytes(2, "big")
        with pytest.raises(DecodeError):
            Record.decode(b"\x16\x03\x03" + huge + b"x")


class TestRecordBuffer:
    def test_single_feed(self):
        buffer = RecordBuffer()
        buffer.feed(Record(ContentType.HANDSHAKE, b"abc").encode())
        records = buffer.pop_records()
        assert len(records) == 1 and records[0].payload == b"abc"

    def test_partial_then_complete(self):
        encoded = Record(ContentType.HANDSHAKE, b"abcdef").encode()
        buffer = RecordBuffer()
        buffer.feed(encoded[:3])
        assert buffer.pop_records() == []
        assert buffer.pending_bytes == 3
        buffer.feed(encoded[3:])
        assert buffer.pop_records()[0].payload == b"abcdef"

    def test_coalesced_records(self):
        buffer = RecordBuffer()
        buffer.feed(
            Record(ContentType.HANDSHAKE, b"one").encode()
            + Record(ContentType.ALERT, b"\x01\x00").encode()
        )
        records = buffer.pop_records()
        assert [record.content_type for record in records] == [
            ContentType.HANDSHAKE,
            ContentType.ALERT,
        ]

    def test_drain_raw(self):
        buffer = RecordBuffer()
        buffer.feed(b"\x16\x03")
        assert buffer.drain_raw() == b"\x16\x03"
        assert buffer.pending_bytes == 0

    def test_pop_records_payloads_are_bytes(self):
        """Unlike pop_record_views, popped payloads are owning ``bytes``
        that survive subsequent feeds and pops."""
        buffer = RecordBuffer()
        buffer.feed(Record(ContentType.HANDSHAKE, b"first").encode())
        (first,) = buffer.pop_records()
        buffer.feed(Record(ContentType.HANDSHAKE, b"second").encode())
        buffer.pop_records()
        assert type(first.payload) is bytes
        assert first.payload == b"first"

    def test_pop_records_single_snapshot_accounting(self):
        """A flight of N records costs one buffer consumption and one
        bounded pass of slicing, not a prefix re-materialization plus a
        remainder shift per record (the old quadratic discipline)."""

        class _AccountingBuffer(bytearray):
            deletions = 0
            sliced_bytes = 0

            def __getitem__(self, key):
                result = bytearray.__getitem__(self, key)
                if isinstance(key, slice):
                    _AccountingBuffer.sliced_bytes += len(result)
                return result

            def __delitem__(self, key):
                _AccountingBuffer.deletions += 1
                bytearray.__delitem__(self, key)

        _AccountingBuffer.deletions = 0
        _AccountingBuffer.sliced_bytes = 0
        records = [
            Record(ContentType.APPLICATION_DATA, bytes([index % 256]) * 100)
            for index in range(64)
        ]
        wire = b"".join(record.encode() for record in records)
        buffer = RecordBuffer()
        buffer._buffer = _AccountingBuffer()
        buffer.feed(wire)
        assert buffer.pop_records() == records
        assert _AccountingBuffer.deletions == 1
        # One snapshot of the consumed region plus the 4 header-peek bytes
        # per record; the old path sliced ~N/2 times the wire size.
        assert _AccountingBuffer.sliced_bytes <= len(wire) + 4 * len(records)

    @settings(max_examples=50, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=100), min_size=1, max_size=10),
        cut_points=st.lists(st.integers(min_value=1, max_value=20), max_size=20),
    )
    def test_arbitrary_chunking_preserves_records(self, payloads, cut_points):
        stream = b"".join(
            Record(ContentType.APPLICATION_DATA, payload).encode()
            for payload in payloads
        )
        buffer = RecordBuffer()
        received = []
        position = 0
        for cut in cut_points:
            buffer.feed(stream[position : position + cut])
            position += cut
            received += buffer.pop_records()
        buffer.feed(stream[position:])
        received += buffer.pop_records()
        assert [record.payload for record in received] == payloads
