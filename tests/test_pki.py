"""Certificates, authorities, chains, and trust-store validation."""

import pytest

from repro.errors import CertificateError
from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.store import TrustStore


class TestCertificate:
    def test_encode_decode_roundtrip(self, pki):
        credential = pki.credential("host.example")
        leaf = credential.certificate
        assert Certificate.decode(leaf.encode()) == leaf

    def test_hostname_exact_match(self, pki):
        leaf = pki.credential("host.example").certificate
        assert leaf.matches_hostname("host.example")
        assert not leaf.matches_hostname("other.example")

    def test_wildcard_match(self, session_rng, ca):
        cert = ca.issue(
            "*.cdn.example", pki_public_key(session_rng, ca), now=0.0
        )
        assert cert.matches_hostname("edge1.cdn.example")
        assert not cert.matches_hostname("cdn.example")
        assert not cert.matches_hostname("a.b.cdn.example")
        assert not cert.matches_hostname(".cdn.example")

    def test_validity_window(self, session_rng, ca):
        cert = ca.issue(
            "x", pki_public_key(session_rng, ca), now=100.0, lifetime=50.0
        )
        assert not cert.valid_at(99.0)
        assert cert.valid_at(125.0)
        assert not cert.valid_at(151.0)


def pki_public_key(rng, ca):
    """A throwaway public key (reuse the CA's own; only shape matters)."""
    return ca.certificate.public_key


class TestAuthority:
    def test_root_is_self_signed(self, ca):
        root = ca.certificate
        assert root.is_self_signed and root.is_ca
        assert root.public_key.verify(root.tbs_bytes(), root.signature)

    def test_issue_credential_chain(self, pki):
        credential = pki.credential("service.example")
        assert credential.certificate.subject == "service.example"
        assert credential.chain[-1].subject == pki.ca.name

    def test_serials_increment(self, ca):
        cert_a = ca.issue("a", ca.certificate.public_key)
        cert_b = ca.issue("b", ca.certificate.public_key)
        assert cert_b.serial == cert_a.serial + 1

    def test_intermediate_ca(self, session_rng, ca, trust):
        intermediate = CertificateAuthority(
            "intermediate", session_rng.fork(b"int"), key_bits=1024, parent=ca
        )
        credential = intermediate.issue_credential(
            "deep.example", rng=session_rng.fork(b"deepk")
        )
        # Chain: leaf -> intermediate -> root; must anchor in the root store.
        leaf = trust.validate_chain(credential.chain, "deep.example", now=0.0)
        assert leaf.subject == "deep.example"


class TestTrustStore:
    def test_validates_good_chain(self, pki):
        credential = pki.credential("good.example")
        leaf = pki.trust.validate_chain(credential.chain, "good.example", now=0.0)
        assert leaf.subject == "good.example"

    def test_rejects_hostname_mismatch(self, pki):
        credential = pki.credential("good.example")
        with pytest.raises(CertificateError):
            pki.trust.validate_chain(credential.chain, "evil.example", now=0.0)

    def test_rejects_expired(self, pki):
        credential = pki.expired_credential("old.example")
        with pytest.raises(CertificateError) as excinfo:
            pki.trust.validate_chain(credential.chain, "old.example", now=0.0)
        assert excinfo.value.alert == "certificate_expired"

    def test_rejects_unknown_ca(self, session_rng, pki):
        rogue = CertificateAuthority("rogue", session_rng.fork(b"rogue"), key_bits=1024)
        credential = rogue.issue_credential("good.example", rng=session_rng.fork(b"rk"))
        with pytest.raises(CertificateError) as excinfo:
            pki.trust.validate_chain(credential.chain, "good.example", now=0.0)
        assert excinfo.value.alert == "unknown_ca"

    def test_rejects_empty_chain(self, trust):
        with pytest.raises(CertificateError):
            trust.validate_chain([], "x", now=0.0)

    def test_rejects_tampered_certificate(self, pki):
        credential = pki.credential("tamper.example")
        leaf = credential.certificate
        forged = Certificate(
            subject="othername.example",
            issuer=leaf.issuer,
            public_key=leaf.public_key,
            serial=leaf.serial,
            not_before=leaf.not_before,
            not_after=leaf.not_after,
            is_ca=leaf.is_ca,
            signature=leaf.signature,  # signature over the ORIGINAL tbs
        )
        with pytest.raises(CertificateError):
            pki.trust.validate_chain(
                (forged,) + credential.chain[1:], "othername.example", now=0.0
            )

    def test_custom_root_injection_enables_interception(self, session_rng, pki):
        # The split-TLS provisioning step: adding the interceptor's root
        # makes its fabricated certificates validate.
        interceptor = CertificateAuthority(
            "corp-interceptor", session_rng.fork(b"corp"), key_bits=1024
        )
        fabricated = interceptor.issue_credential(
            "bank.example", rng=session_rng.fork(b"fk")
        )
        store = TrustStore([pki.ca.certificate])
        with pytest.raises(CertificateError):
            store.validate_chain(fabricated.chain, "bank.example", now=0.0)
        store.add_root(interceptor.certificate)
        assert store.validate_chain(fabricated.chain, "bank.example", now=0.0)

    def test_remove_root(self, session_rng):
        ca = CertificateAuthority("r", session_rng.fork(b"r"), key_bits=1024)
        store = TrustStore([ca.certificate])
        store.remove_root("r")
        assert store.roots == ()

    def test_hostname_check_skipped_when_none(self, pki):
        credential = pki.credential("anyname.example")
        assert pki.trust.validate_chain(credential.chain, None, now=0.0)
