"""The experiment CLI (python -m repro)."""

import pytest

from repro.cli import main


class TestCli:
    def test_sgx_command(self, capsys):
        assert main(["sgx"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Gbps" in out

    def test_viability_subset(self, capsys):
        assert main(["viability", "--sites", "4", "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "4/4" in out

    def test_interop_subset(self, capsys):
        assert main(["interop", "--sites", "10", "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "legacy interoperability" in out

    def test_fuzz_replay(self, capsys):
        assert main([
            "fuzz", "--replay", "tls",
            "--seed", "fz-0", "--index", "1", "--kind", "bit_flip",
        ]) == 0
        out = capsys.readouterr().out
        assert "kind=bit_flip: ok" in out
        assert "digest:" in out

    def test_fuzz_replay_unknown_implementation_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--replay", "not-a-protocol"])

    def test_fuzz_replay_defaults_index_to_one(self, capsys):
        # ``--index`` is now shared with selftest and defaults to None;
        # the fuzz replay path must keep its historical default of 1.
        assert main([
            "fuzz", "--replay", "tls", "--seed", "fz-0", "--kind", "bit_flip",
        ]) == 0
        assert "kind=bit_flip: ok" in capsys.readouterr().out

    def test_selftest_quick_scorecard(self, capsys):
        assert main(["selftest", "--quick", "--impl", "tls"]) == 0
        out = capsys.readouterr().out
        assert "zero silent downgrades" in out
        assert "report digest" in out

    def test_metrics_quick(self, capsys):
        assert main(["metrics", "--quick", "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "wiretap vs metrics" in out
        assert "MISMATCH" not in out
        assert "all hops agree" in out

    def test_metrics_json_is_schema_versioned(self, capsys):
        import json

        assert main(["metrics", "--quick", "--json", "--seed", "cli-test"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == 2
        assert report["scenario"]["established"] is True
        assert len(report["per_hop"]) == 6

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])
