"""Unit tests for the mbTLS plumbing: mux, KeyMaterial round trip through
engines, endpoint configs, and the resumption store."""


from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxInfo
from repro.core.mux import Subchannel, wrap_engine_output
from repro.core.resumption import MiddleboxSessionStore, RememberedMiddlebox
from repro.pki.store import TrustStore
from repro.tls.config import TLSConfig
from repro.tls.session import SessionState
from repro.wire.mbtls import EncapsulatedRecord
from repro.wire.records import ContentType, Record, RecordBuffer


class _FakeEngine:
    def __init__(self, chunks):
        self._chunks = list(chunks)

    def data_to_send(self):
        return self._chunks.pop(0) if self._chunks else b""


class TestMux:
    def test_wrap_engine_output_wraps_each_record(self):
        records = [
            Record(ContentType.HANDSHAKE, b"one"),
            Record(ContentType.HANDSHAKE, b"two"),
        ]
        engine = _FakeEngine([b"".join(r.encode() for r in records)])
        wrapped = wrap_engine_output(engine, 3, RecordBuffer())
        buffer = RecordBuffer()
        buffer.feed(wrapped)
        outer = buffer.pop_records()
        assert len(outer) == 2
        for outer_record, inner in zip(outer, records):
            encap = EncapsulatedRecord.from_record(outer_record)
            assert encap.subchannel_id == 3
            assert encap.inner == inner

    def test_wrap_handles_split_records_across_drains(self):
        record = Record(ContentType.HANDSHAKE, b"payload-bytes")
        encoded = record.encode()
        engine = _FakeEngine([encoded[:4], encoded[4:]])
        buffer = RecordBuffer()
        first = wrap_engine_output(engine, 1, buffer)
        assert first == b""  # incomplete record retained
        second = wrap_engine_output(engine, 1, buffer)
        encap = EncapsulatedRecord.from_record(Record.decode(second))
        assert encap.inner == record

    def test_empty_output(self):
        assert wrap_engine_output(_FakeEngine([]), 1, RecordBuffer()) == b""

    def test_subchannel_feed_and_drain(self, rng, pki):
        from repro.tls.engine import TLSServerEngine

        engine = TLSServerEngine(
            TLSConfig(rng=rng, credential=pki.credential("server"))
        )
        engine.start()
        sub = Subchannel(5, engine)
        assert sub.drain() == b""
        assert not sub.complete and not sub.rejected


class TestEndpointConfig:
    def test_secondary_trust_store_fallback(self, rng, pki):
        config = MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng, trust_store=pki.trust)
        )
        assert config.secondary_trust_store() is pki.trust

    def test_secondary_trust_store_override(self, rng, pki):
        other = TrustStore([])
        config = MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng, trust_store=pki.trust),
            middlebox_trust_store=other,
        )
        assert config.secondary_trust_store() is other

    def test_middlebox_config_serves(self, rng):
        config = MiddleboxConfig(name="m", tls=TLSConfig(rng=rng))
        assert config.serves("anything")
        scoped = MiddleboxConfig(
            name="m", tls=TLSConfig(rng=rng),
            served_servers=frozenset({"a.example"}),
        )
        assert scoped.serves("a.example") and not scoped.serves("b.example")

    def test_middlebox_info_name_resolution(self, pki):
        cert = pki.credential("mb.example").certificate
        assert MiddleboxInfo(1, cert, None, True).name == "mb.example"
        assert MiddleboxInfo(1, None, None, True, known_name="kept").name == "kept"
        assert MiddleboxInfo(1, None, None, True).name == "<unauthenticated>"


class TestMiddleboxSessionStore:
    def _remembered(self, name: str) -> RememberedMiddlebox:
        return RememberedMiddlebox(
            session=SessionState(
                session_id=b"\x01" * 32, master_secret=b"\x02" * 48,
                cipher_suite=0xC030,
            ),
            name=name,
            measurement=None,
        )

    def test_remember_and_lookup(self):
        store = MiddleboxSessionStore()
        store.remember("server", [self._remembered("a"), self._remembered("b")])
        assert [m.name for m in store.lookup("server")] == ["a", "b"]
        assert store.lookup("other") == []

    def test_forget(self):
        store = MiddleboxSessionStore()
        store.remember("server", [self._remembered("a")])
        store.forget("server")
        assert store.lookup("server") == []

    def test_lru_eviction(self):
        store = MiddleboxSessionStore(capacity=2)
        for name in ("one", "two", "three"):
            store.remember(name, [self._remembered(name)])
        assert store.lookup("one") == []
        assert store.lookup("three")

    def test_lookup_refreshes_recency(self):
        # Regression: lookups must count as uses, or the most-resumed
        # server is evicted as soon as capacity+1 servers are remembered.
        store = MiddleboxSessionStore(capacity=3)
        store.remember("hot", [self._remembered("hot")])
        for index in range(4):
            store.remember(f"cold{index}", [self._remembered(f"cold{index}")])
            assert store.lookup("hot"), f"hot entry evicted after insert {index}"
        # The untouched cold entries were evicted instead.
        assert store.lookup("cold0") == []

    def test_lookup_returns_copy(self):
        store = MiddleboxSessionStore()
        store.remember("server", [self._remembered("a")])
        listing = store.lookup("server")
        listing.append(self._remembered("b"))
        assert len(store.lookup("server")) == 1
