"""Zero-copy receive path: ``pop_record_views`` must parse exactly like
``pop_records`` while materializing one snapshot per flight instead of
one ``bytes`` per record, and the record plane must hand those views to
the batched open without copying."""

import pytest

from repro.errors import DecodeError
from repro.io.record_plane import RecordPlane
from repro.tls.ciphersuites import TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256
from repro.tls.record_layer import ConnectionState
from repro.wire.records import ContentType, Record, RecordBuffer


def _wire(*payloads, content_type=ContentType.APPLICATION_DATA):
    return b"".join(
        Record(content_type, payload).encode() for payload in payloads
    )


class TestPopRecordViews:
    def test_matches_pop_records(self):
        wire = _wire(b"alpha", b"", b"b" * 1000) + _wire(
            b"\x01", content_type=ContentType.CHANGE_CIPHER_SPEC
        )
        copying, views = RecordBuffer(), RecordBuffer()
        copying.feed(wire)
        views.feed(wire)
        expected = copying.pop_records()
        got = views.pop_record_views()
        assert len(got) == len(expected)
        for view_record, record in zip(got, expected):
            assert view_record.content_type == record.content_type
            assert view_record.version == record.version
            assert bytes(view_record.payload) == record.payload

    def test_payloads_share_one_snapshot(self):
        buffer = RecordBuffer()
        buffer.feed(_wire(b"one", b"two", b"three"))
        records = buffer.pop_record_views()
        payloads = [record.payload for record in records]
        assert all(isinstance(payload, memoryview) for payload in payloads)
        # One materialization per flight: every view slices the same base.
        base = payloads[0].obj
        assert all(payload.obj is base for payload in payloads)

    def test_partial_record_retained(self):
        buffer = RecordBuffer()
        wire = _wire(b"complete") + _wire(b"partial-record")[:-3]
        buffer.feed(wire)
        records = buffer.pop_record_views()
        assert [bytes(r.payload) for r in records] == [b"complete"]
        assert buffer.pending_bytes == len(_wire(b"partial-record")) - 3
        buffer.feed(_wire(b"x")[-3:][:0])  # no-op feed keeps state intact
        buffer.feed(_wire(b"partial-record")[-3:])
        assert [bytes(r.payload) for r in buffer.pop_record_views()] == [
            b"partial-record"
        ]

    def test_empty_buffer(self):
        assert RecordBuffer().pop_record_views() == []

    def test_oversize_length_raises_even_when_incomplete(self):
        # Same error order as pop_records: a hostile length field trips
        # before the record body ever arrives.
        for method in ("pop_records", "pop_record_views"):
            buffer = RecordBuffer()
            buffer.feed(bytes([23, 3, 3, 0xFF, 0xFF]))
            with pytest.raises(DecodeError):
                getattr(buffer, method)()

    def test_unknown_content_type_only_on_complete_record(self):
        header = bytes([99, 3, 3, 0, 4])
        for method in ("pop_records", "pop_record_views"):
            buffer = RecordBuffer()
            buffer.feed(header)  # incomplete: no error yet
            assert getattr(buffer, method)() == []
            buffer.feed(b"body")
            with pytest.raises(DecodeError):
                getattr(buffer, method)()


class TestPlaneReceivePath:
    def _sealed_wire(self, payloads):
        suite = TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256
        key = bytes(range(suite.key_length))
        fixed_iv = b"\x0b" * suite.fixed_iv_length
        writer = ConnectionState(suite, key, fixed_iv)
        items = [(ContentType.APPLICATION_DATA, p) for p in payloads]
        wire = b"".join(r.encode() for r in writer.protect_many(items))
        return wire, ConnectionState(suite, key, fixed_iv)

    def test_pop_records_returns_views(self):
        plane = RecordPlane()
        plane.feed(_wire(b"a" * 100, b"b" * 200))
        records = plane.pop_records()
        assert all(isinstance(r.payload, memoryview) for r in records)

    def test_unprotect_many_accepts_views(self):
        payloads = [b"p%d" % i * 512 for i in range(6)]
        wire, read_state = self._sealed_wire(payloads)
        plane = RecordPlane()
        plane.read_state = read_state
        plane.feed(wire)
        records = plane.pop_records()
        assert plane.unprotect_many(records) == payloads

    def test_plaintext_passthrough_returns_bytes(self):
        # Before keys, consumers receive bytes even though the parser
        # produced views — downstream code stores payloads past the flight.
        plane = RecordPlane()
        plane.feed(_wire(b"hello", b"world"))
        records = plane.pop_records()
        assert plane.unprotect_many(records) == [b"hello", b"world"]
        assert all(
            isinstance(p, bytes) for p in plane.unprotect_many(records)
        )
        plane.feed(_wire(b"solo"))
        (record,) = plane.pop_records()
        assert plane.unprotect(record) == b"solo"
        assert isinstance(plane.unprotect(record), bytes)
