"""Simulated SGX: measurements, quotes, platform adversary, cost model."""

import pytest

from repro.errors import AttestationError, EnclaveError
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode, MemoryArena, Platform
from repro.sgx.syscalls import SgxCostModel


class TestMeasurement:
    def test_measurement_depends_on_every_field(self):
        base = EnclaveCode(name="app", version="1", image=b"code")
        assert base.measurement != EnclaveCode("app2", "1", b"code").measurement
        assert base.measurement != EnclaveCode("app", "2", b"code").measurement
        assert base.measurement != EnclaveCode("app", "1", b"other").measurement

    def test_measurement_deterministic(self):
        a = EnclaveCode(name="app", version="1", image=b"code")
        b = EnclaveCode(name="app", version="1", image=b"code")
        assert a.measurement == b.measurement

    def test_no_length_extension_ambiguity(self):
        # name/version/image boundaries are length-prefixed in the hash.
        a = EnclaveCode(name="ab", version="c", image=b"")
        b = EnclaveCode(name="a", version="bc", image=b"")
        assert a.measurement != b.measurement


class TestQuotes:
    def test_quote_roundtrip_and_verify(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service)
        enclave = platform.launch_enclave(EnclaveCode("app", "1", b"x"))
        quote_bytes = enclave.quote(b"handshake-hash")
        verifier = service.verifier({enclave.measurement})
        quote = verifier.verify(quote_bytes, b"handshake-hash")
        assert quote.measurement == enclave.measurement

    def test_wrong_report_data_rejected(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service)
        enclave = platform.launch_enclave(EnclaveCode("app", "1", b"x"))
        quote_bytes = enclave.quote(b"session-A")
        with pytest.raises(AttestationError):
            service.verifier(None).verify(quote_bytes, b"session-B")

    def test_replayed_quote_rejected(self, rng):
        """A quote from one handshake cannot be replayed into another."""
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service)
        enclave = platform.launch_enclave(EnclaveCode("app", "1", b"x"))
        old_quote = enclave.quote(b"old-transcript-hash")
        with pytest.raises(AttestationError):
            service.verifier(None).verify(old_quote, b"new-transcript-hash")

    def test_unexpected_measurement_rejected(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service)
        enclave = platform.launch_enclave(EnclaveCode("app", "1", b"x"))
        quote_bytes = enclave.quote(b"rd")
        verifier = service.verifier({b"\x00" * 32})
        with pytest.raises(AttestationError):
            verifier.verify(quote_bytes, b"rd")

    def test_forged_signature_rejected(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        other_service = AttestationService(rng.fork(b"evil"))
        platform = Platform(other_service)  # quotes signed by the wrong key
        enclave = platform.launch_enclave(EnclaveCode("app", "1", b"x"))
        quote_bytes = enclave.quote(b"rd")
        with pytest.raises(AttestationError):
            service.verifier(None).verify(quote_bytes, b"rd")

    def test_malformed_quote_rejected(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        with pytest.raises(AttestationError):
            service.verifier(None).verify(b"not-a-quote", b"rd")

    def test_oversize_report_data_rejected(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        with pytest.raises(AttestationError):
            service.sign_quote(b"m" * 32, b"x" * 65)


class TestPlatform:
    def test_host_memory_visible_to_malicious_platform(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        platform.arena_for(None).store("session_key", b"super-secret")
        assert b"super-secret" in platform.dump_visible_secrets()

    def test_enclave_memory_invisible(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        enclave = platform.launch_enclave(EnclaveCode("app", "1", b"x"))
        platform.arena_for(enclave).store("session_key", b"super-secret")
        assert platform.dump_visible_secrets() == set()

    def test_honest_platform_cannot_substitute_code(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=False)
        with pytest.raises(EnclaveError):
            platform.plant_code_substitution(EnclaveCode("evil", "1", b"z"))

    def test_code_substitution_changes_measurement(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        good = EnclaveCode("app", "1", b"good")
        platform.plant_code_substitution(EnclaveCode("app", "1", b"evil"))
        enclave = platform.launch_enclave(good)
        assert enclave.measurement != good.measurement

    def test_substitution_applies_only_once(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        good = EnclaveCode("app", "1", b"good")
        platform.plant_code_substitution(EnclaveCode("app", "1", b"evil"))
        platform.launch_enclave(good)
        second = platform.launch_enclave(good)
        assert second.measurement == good.measurement

    def test_foreign_enclave_arena_rejected(self, rng):
        service = AttestationService(rng.fork(b"ias"))
        platform_a = Platform(service)
        platform_b = Platform(service)
        enclave = platform_a.launch_enclave(EnclaveCode("app", "1", b"x"))
        with pytest.raises(EnclaveError):
            platform_b.arena_for(enclave)


class TestMemoryArena:
    def test_store_and_enumerate(self):
        arena = MemoryArena(protected=False)
        arena.store("k", b"v1")
        arena.store("k", b"v2")
        assert arena.secrets() == {"k": [b"v1", b"v2"]}
        assert arena.all_bytes() == {b"v1", b"v2"}


class TestCostModel:
    def test_enclave_overhead_is_small_for_large_buffers(self):
        """The §5.3 headline: enclave transitions do not dominate I/O."""
        model = SgxCostModel()
        for buffer_size in (512, 4096, 12288):
            plain = model.throughput(buffer_size, enclave=False, encryption=False)
            enclaved = model.throughput(buffer_size, enclave=True, encryption=False)
            ratio = enclaved.throughput_gbps / plain.throughput_gbps
            assert ratio > 0.80, (buffer_size, ratio)

    def test_encryption_dominates_enclave_cost(self):
        model = SgxCostModel()
        result = model.throughput(8192, enclave=True, encryption=True)
        assert result.cpu_breakdown["crypto"] > result.cpu_breakdown["enclave_crossings"]

    def test_interrupts_dominate_syscalls_for_large_buffers(self):
        model = SgxCostModel()
        breakdown = model.time_per_buffer(12288, enclave=True, encryption=False)
        assert breakdown["interrupts"] > breakdown["enclave_crossings"]

    def test_throughput_grows_with_buffer_size(self):
        model = SgxCostModel()
        results = [
            model.throughput(size, enclave=True, encryption=True).throughput_gbps
            for size in (512, 1024, 4096, 12288)
        ]
        assert results == sorted(results)

    def test_encrypted_throughput_plateaus(self):
        """Crypto is per-byte, so encrypted throughput saturates (~7 Gbps)."""
        model = SgxCostModel()
        big = model.throughput(8192, enclave=False, encryption=True).throughput_gbps
        bigger = model.throughput(12288, enclave=False, encryption=True).throughput_gbps
        assert abs(bigger - big) / big < 0.15
        assert 5.0 < bigger < 9.0

    def test_async_syscalls_remove_crossing_term(self):
        model = SgxCostModel(async_syscalls=True)
        breakdown = model.time_per_buffer(4096, enclave=True, encryption=False)
        assert breakdown["enclave_crossings"] == 0.0
