"""The TLS 1.2 engines: handshakes, app data, resumption, alerts, failures."""

import pytest

from repro.tls.ciphersuites import CIPHER_SUITES
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    HandshakeComplete,
    TicketIssued,
)
from repro.tls.session import ClientSessionStore, ServerSessionCache, TicketKeeper
from repro.errors import ProtocolError


def make_pair(rng, pki, client_kwargs=None, server_kwargs=None):
    client = TLSClientEngine(
        TLSConfig(
            rng=rng.fork(b"client"),
            trust_store=pki.trust,
            server_name="server",
            **(client_kwargs or {}),
        )
    )
    server = TLSServerEngine(
        TLSConfig(
            rng=rng.fork(b"server"),
            credential=pki.credential("server"),
            **(server_kwargs or {}),
        )
    )
    client.start()
    server.start()
    return client, server


class TestFullHandshake:
    @pytest.mark.parametrize("code", sorted(CIPHER_SUITES))
    def test_every_suite_handshakes(self, rng, pki, pump, code):
        client, server = make_pair(
            rng, pki,
            client_kwargs={"cipher_suites": (code,)},
            server_kwargs={"cipher_suites": (code,)},
        )
        client_events, server_events = pump(client, server)
        assert client.handshake_complete and server.handshake_complete
        assert client.suite.code == code == server.suite.code
        assert any(isinstance(e, HandshakeComplete) for e in client_events)
        assert any(isinstance(e, HandshakeComplete) for e in server_events)

    def test_master_secrets_agree(self, rng, pki, pump):
        client, server = make_pair(rng, pki)
        pump(client, server)
        assert client.master_secret == server.master_secret
        assert len(client.master_secret) == 48

    def test_peer_certificate_surfaces(self, rng, pki, pump):
        client, server = make_pair(rng, pki)
        pump(client, server)
        assert client.peer_certificate.subject == "server"

    def test_application_data_both_directions(self, rng, pki, pump):
        client, server = make_pair(rng, pki)
        pump(client, server)
        client.send_application_data(b"request")
        events = server.receive_bytes(client.data_to_send())
        assert ApplicationData(data=b"request") in events
        server.send_application_data(b"response")
        events = client.receive_bytes(server.data_to_send())
        assert ApplicationData(data=b"response") in events

    def test_large_data_fragmented(self, rng, pki, pump):
        client, server = make_pair(rng, pki)
        pump(client, server)
        blob = bytes(range(256)) * 200  # 51200 bytes > 3 fragments
        client.send_application_data(blob)
        events = server.receive_bytes(client.data_to_send())
        received = b"".join(
            event.data for event in events if isinstance(event, ApplicationData)
        )
        assert received == blob
        assert len([e for e in events if isinstance(e, ApplicationData)]) >= 4

    def test_data_before_handshake_rejected(self, rng, pki):
        client, _ = make_pair(rng, pki)
        with pytest.raises(ProtocolError):
            client.send_application_data(b"too early")

    def test_dhe_suite_uses_group_parameter(self, rng, pki, pump):
        client, server = make_pair(
            rng, pki,
            client_kwargs={"cipher_suites": (0x009F,)},
            server_kwargs={"cipher_suites": (0x009F,), "dhe_group_bits": 1536},
        )
        pump(client, server)
        assert client.handshake_complete


class TestNegotiation:
    def test_server_picks_its_preference(self, rng, pki, pump):
        client, server = make_pair(
            rng, pki,
            client_kwargs={"cipher_suites": (0xC02F, 0xC030)},
            server_kwargs={"cipher_suites": (0xC030, 0xC02F)},
        )
        pump(client, server)
        assert client.suite.code == 0xC030

    def test_no_common_suite_fails_cleanly(self, rng, pki, pump):
        client, server = make_pair(
            rng, pki,
            client_kwargs={"cipher_suites": (0xC02F,)},
            server_kwargs={"cipher_suites": (0x009F,)},
        )
        client_events, _ = pump(client, server)
        assert not server.handshake_complete and server.closed
        assert any(isinstance(e, (AlertReceived, ConnectionClosed)) for e in client_events)


class TestCertificateFailures:
    def test_wrong_hostname_aborts(self, rng, pki, pump):
        client = TLSClientEngine(
            TLSConfig(rng=rng.fork(b"c"), trust_store=pki.trust, server_name="other")
        )
        server = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"s"), credential=pki.credential("server"))
        )
        client.start(); server.start()
        pump(client, server)
        assert not client.handshake_complete and client.closed
        assert client.alert_sent is not None

    def test_expired_certificate_aborts(self, rng, pki, pump):
        client = TLSClientEngine(
            TLSConfig(rng=rng.fork(b"c"), trust_store=pki.trust, server_name="stale")
        )
        server = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"s"), credential=pki.expired_credential("stale"))
        )
        client.start(); server.start()
        pump(client, server)
        assert not client.handshake_complete
        assert client.alert_sent.description.name == "CERTIFICATE_EXPIRED"

    def test_server_without_credential_rejected_at_construction(self, rng):
        with pytest.raises(ProtocolError):
            TLSServerEngine(TLSConfig(rng=rng))


class TestTamperedHandshake:
    def test_corrupted_server_random_fails_at_finished(self, rng, pki, pump):
        # Flipping a bit in the ServerHello random desynchronizes the
        # transcript/master secret; the handshake must fail at the latest
        # when Finished is verified.
        client, server = make_pair(rng, pki)
        flight1 = client.data_to_send()
        server.receive_bytes(flight1)
        flight2 = bytearray(server.data_to_send())
        flight2[60] ^= 0xFF  # inside the ServerHello random
        client.receive_bytes(bytes(flight2))
        pump(client, server)
        assert not client.handshake_complete or not server.handshake_complete
        assert client.closed or server.closed

    def test_corrupted_certificate_aborts_immediately(self, rng, pki):
        client, server = make_pair(rng, pki)
        server.receive_bytes(client.data_to_send())
        flight2 = bytearray(server.data_to_send())
        # Corrupt well into the Certificate message body.
        flight2[200] ^= 0xFF
        client.receive_bytes(bytes(flight2))
        assert not client.handshake_complete
        assert client.closed


class TestResumption:
    def test_session_id_resumption(self, rng, pki, pump):
        store = ClientSessionStore()
        cache = ServerSessionCache()
        first_client, first_server = make_pair(
            rng, pki,
            client_kwargs={"session_store": store},
            server_kwargs={"session_cache": cache},
        )
        pump(first_client, first_server)
        assert not first_client.resumed and len(cache) == 1

        second_client, second_server = make_pair(
            rng.fork(b"2"), pki,
            client_kwargs={"session_store": store},
            server_kwargs={"session_cache": cache},
        )
        pump(second_client, second_server)
        assert second_client.resumed and second_server.resumed
        assert second_client.handshake_complete and second_server.handshake_complete
        # Same master secret, fresh key block.
        assert second_client.master_secret == first_client.master_secret
        assert (
            second_client.key_block.client_write_key
            != first_client.key_block.client_write_key
        )

    def test_resumed_session_carries_data(self, rng, pki, pump):
        store = ClientSessionStore()
        cache = ServerSessionCache()
        pump(*make_pair(rng, pki, {"session_store": store}, {"session_cache": cache}))
        client, server = make_pair(
            rng.fork(b"2"), pki, {"session_store": store}, {"session_cache": cache}
        )
        pump(client, server)
        client.send_application_data(b"after-resumption")
        events = server.receive_bytes(client.data_to_send())
        assert ApplicationData(data=b"after-resumption") in events

    def test_ticket_resumption(self, rng, pki, pump):
        store = ClientSessionStore()
        keeper = TicketKeeper(rng.random_bytes(32), rng.fork(b"tickets"))
        client, server = make_pair(
            rng, pki,
            client_kwargs={"session_store": store, "request_ticket": True},
            server_kwargs={"ticket_keeper": keeper},
        )
        client_events, _ = pump(client, server)
        assert any(isinstance(e, TicketIssued) for e in client_events)
        assert store.lookup_ticket("server") is not None

        second_client, second_server = make_pair(
            rng.fork(b"2"), pki,
            client_kwargs={"session_store": store},
            server_kwargs={"ticket_keeper": keeper},
        )
        pump(second_client, second_server)
        assert second_client.resumed and second_server.resumed

    def test_unknown_session_id_falls_back_to_full(self, rng, pki, pump):
        store = ClientSessionStore()
        cache = ServerSessionCache()
        pump(*make_pair(rng, pki, {"session_store": store}, {"session_cache": cache}))
        # A different server instance with an EMPTY cache: full handshake.
        client, server = make_pair(
            rng.fork(b"2"), pki,
            client_kwargs={"session_store": store},
            server_kwargs={"session_cache": ServerSessionCache()},
        )
        pump(client, server)
        assert client.handshake_complete and not client.resumed

    def test_bad_ticket_falls_back_to_full(self, rng, pki, pump):
        store = ClientSessionStore()
        store.remember_ticket("server", b"garbage-ticket-bytes")
        keeper = TicketKeeper(rng.random_bytes(32), rng.fork(b"t"))
        client, server = make_pair(
            rng, pki,
            client_kwargs={"session_store": store},
            server_kwargs={"ticket_keeper": keeper},
        )
        pump(client, server)
        assert client.handshake_complete and not client.resumed


class TestCloseAndAlerts:
    def test_close_notify_roundtrip(self, rng, pki, pump):
        client, server = make_pair(rng, pki)
        pump(client, server)
        client.close()
        events = server.receive_bytes(client.data_to_send())
        assert any(isinstance(e, ConnectionClosed) for e in events)
        assert server.alert_received.is_close

    def test_send_after_close_rejected(self, rng, pki, pump):
        client, server = make_pair(rng, pki)
        pump(client, server)
        client.close()
        with pytest.raises(ProtocolError):
            client.send_application_data(b"zombie")


class TestLegacyToleranceKnob:
    def test_tolerant_server_ignores_announcement_record(self, rng, pki, pump):
        from repro.wire.mbtls import EncapsulatedRecord, MiddleboxAnnouncement

        client, server = make_pair(rng, pki)
        announcement = EncapsulatedRecord(
            subchannel_id=1, inner=MiddleboxAnnouncement().to_record()
        ).to_record()
        # Announcement arrives before the ClientHello, like an eager mbox.
        server.receive_bytes(announcement.encode())
        pump(client, server)
        assert server.handshake_complete

    def test_strict_server_aborts_on_announcement(self, rng, pki, pump):
        client, server = make_pair(
            rng, pki, server_kwargs={"ignore_unknown_records": False}
        )
        from repro.wire.mbtls import EncapsulatedRecord, MiddleboxAnnouncement

        announcement = EncapsulatedRecord(
            subchannel_id=1, inner=MiddleboxAnnouncement().to_record()
        ).to_record()
        server.receive_bytes(announcement.encode())
        pump(client, server)
        assert not server.handshake_complete
