"""mbTLS data plane: fragmentation, alerts, buffering, drops, closing."""


from helpers import MbTLSScenario, identity, tagger
from repro.core.config import MiddleboxRole
from repro.tls.events import ConnectionClosed


class TestBulkData:
    def test_large_transfer_through_middlebox(self, rng, pki):
        blob = bytes(range(256)) * 150  # 38400 bytes; multiple records
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client(blob)
        assert b"".join(scenario.server_received) == blob
        # The echo server prefixes each received chunk independently.
        expected = b"".join(b"REPLY:" + chunk for chunk in scenario.server_received)
        assert b"".join(scenario.client_received) == expected

    def test_multiple_requests_sequential(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, tagger(b"!"), {})],
            server_kind="tls",
        ).run_client(b"one")
        for payload in (b"two", b"three"):
            scenario.client_driver.send_application_data(payload)
            scenario.network.sim.run()
        assert scenario.server_received == [b"one!", b"two!", b"three!"]

    def test_server_to_client_transform(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("shrink", MiddleboxRole.CLIENT_SIDE, tagger(b"<", "s2c"), {})
            ],
            server_kind="tls",
        ).run_client(b"req")
        assert scenario.client_received == [b"REPLY:req<"]


class TestMiddleboxAppDrop:
    def test_app_can_consume_chunks(self, rng, pki):
        def censor(direction, data):
            return b"" if b"forbidden" in data else data

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("censor", MiddleboxRole.CLIENT_SIDE, censor, {})],
            server_kind="tls",
        ).run_client(b"contains forbidden words")
        # The chunk was emptied; nothing reaches the server.
        assert scenario.server_received in ([], [b""])


class TestCloseSemantics:
    def test_close_propagates_through_middlebox(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client(b"PING")
        scenario.client_driver.close()
        scenario.network.sim.run()
        closed = [e for e in scenario.server_events if isinstance(e, ConnectionClosed)]
        assert closed, "server must observe the close"

    def test_close_alert_travels_under_hop_keys(self, rng, pki):
        # The close_notify from the client is re-encrypted by the middlebox,
        # so the two hops carry different alert ciphertexts.
        from repro.netsim.adversary import GlobalAdversary
        from repro.wire.records import ContentType, RecordBuffer

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        )
        adversary = GlobalAdversary(scenario.network)
        scenario.run_client(b"PING")
        scenario.client_driver.close()
        scenario.network.sim.run()

        def alert_records(a, b):
            buffer = RecordBuffer()
            buffer.feed(adversary.wiretap_between(a, b).recorder.all_bytes())
            return [
                record.encode()
                for record in buffer.pop_records()
                if record.content_type == ContentType.ALERT
            ]

        hop1 = alert_records("client", "mb0")
        hop2 = alert_records("mb0", "server")
        assert hop1 and hop2
        assert set(hop1).isdisjoint(set(hop2))


class TestFalseStartBuffering:
    def test_server_data_queued_until_keys_distributed(self, rng, pki):
        """The server may queue a response before establishment (§3.5)."""
        early = []

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("edge", MiddleboxRole.SERVER_SIDE, tagger(b"+E", "s2c"), {})],
            client_kind="tls",
            server_kind="mbtls",
        )
        # Queue server data at accept time, i.e., before establishment.
        original_serve = scenario.server_events.append

        scenario.run_client(b"PING")
        assert scenario.client_received == [b"REPLY:PING+E"]

    def test_middlebox_buffers_data_until_key_material(self, rng, pki):
        # With server-side middleboxes, client data reaches the middlebox
        # before its MBTLSKeyMaterial; the engine must buffer, then flush.
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("edge", MiddleboxRole.SERVER_SIDE, tagger(b"+E"), {})],
            client_kind="tls",
            server_kind="mbtls",
        ).run_client(b"EAGER")
        assert scenario.server_received == [b"EAGER+E"]
        assert scenario.middlebox_engine().keys_installed


class TestRecordDropCounters:
    def test_endpoint_drops_forged_records_without_dying(self, rng, pki):
        from repro.wire.records import ContentType, Record

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client(b"PING")
        engine = scenario.client_engine
        forged = Record(ContentType.APPLICATION_DATA, b"\x00" * 40)
        events = engine.receive_bytes(forged.encode())
        assert engine.records_dropped == 1
        assert not engine.closed
        # The session still works afterwards.
        scenario.client_driver.send_application_data(b"still-alive")
        scenario.network.sim.run()
        assert b"still-alive" in scenario.server_received[-1]

    def test_middlebox_drops_forged_records(self, rng, pki):
        from repro.wire.records import ContentType, Record

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client(b"PING")
        middlebox = scenario.middlebox_engine()
        before = middlebox.records_processed
        forged = Record(ContentType.APPLICATION_DATA, b"\x00" * 40)
        middlebox.receive_down(forged.encode())
        assert middlebox.records_processed == before  # silently discarded
