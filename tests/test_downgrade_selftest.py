"""The downgrade gauntlet: seeded adversaries, the selftest scoring
service, and the fallback-accounting plumbing they rely on.

Everything here must be reproducible from ``(seed, case_index)`` alone —
the replay contract ``python -m repro selftest --seed S --index I`` exposes.
"""

import json

import pytest

from repro import obs
from repro.bench.selftest import (
    PROPERTIES,
    baseline_outcome,
    run_case,
    run_selftest,
)
from repro.bench.threats import Scenario
from repro.cli import main
from repro.errors import DecodeError
from repro.netsim.downgrade import (
    ATTACK_DIRECTIONS,
    ATTACK_KINDS,
    DowngradeAdversary,
    DowngradeCase,
    forged_announcement_bytes,
)
from repro.wire.extensions import ExtensionType
from repro.wire.handshake import ClientHello, Handshake, HandshakeBuffer
from repro.wire.mbtls import EncapsulatedRecord
from repro.wire.records import ContentType, Record, RecordBuffer


def _client_hello_record(extensions=(), suites=(0x003C, 0x009C)) -> bytes:
    hello = ClientHello(
        random=bytes(range(32)),
        session_id=b"",
        cipher_suites=tuple(suites),
        extensions=tuple(extensions),
    )
    body = Handshake(
        msg_type=ClientHello.msg_type, body=hello.encode_body()
    ).encode()
    return Record(content_type=ContentType.HANDSHAKE, payload=body).encode()


def _parse_hello(wire: bytes) -> ClientHello:
    buffer = RecordBuffer()
    buffer.feed(wire)
    records = buffer.pop_records()
    assert records[0].content_type == ContentType.HANDSHAKE
    handshakes = HandshakeBuffer()
    handshakes.feed(records[0].payload)
    message = handshakes.pop_messages()[0]
    return ClientHello.decode_body(message.body)


class TestDowngradeAdversary:
    def test_kind_derived_from_case_index(self):
        for index, kind in enumerate(ATTACK_KINDS):
            assert DowngradeAdversary(b"s", index).kind == kind
            assert DowngradeAdversary(b"s", index + len(ATTACK_KINDS)).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DowngradeAdversary(b"s", 0, "melt_the_wire")

    def test_every_kind_has_a_direction(self):
        assert set(ATTACK_DIRECTIONS) == set(ATTACK_KINDS)
        assert set(ATTACK_DIRECTIONS.values()) <= {"c2s", "s2c"}

    def test_strip_support_removes_private_use_extensions(self):
        from repro.wire.extensions import MiddleboxSupportExtension

        wire = _client_hello_record(
            extensions=[MiddleboxSupportExtension().to_extension()]
        )
        adversary = DowngradeAdversary(b"s", 0, "strip_support")
        hello = _parse_hello(adversary.process_chunk(wire))
        assert hello.extensions == ()
        assert adversary.applied and adversary.applied[0].kind == "strip_support"

    def test_strip_support_is_noop_without_the_extension(self):
        wire = _client_hello_record()
        adversary = DowngradeAdversary(b"s", 0, "strip_support")
        assert adversary.process_chunk(wire) == wire
        assert adversary.applied == []

    def test_suite_delete_keeps_one_offered_suite(self):
        wire = _client_hello_record(suites=(0x003C, 0x009C, 0x1301))
        adversary = DowngradeAdversary(b"s", 2, "suite_delete")
        hello = _parse_hello(adversary.process_chunk(wire))
        assert len(hello.cipher_suites) == 1
        assert hello.cipher_suites[0] in (0x003C, 0x009C, 0x1301)

    def test_suite_inject_prepends_a_weak_code(self):
        wire = _client_hello_record()
        adversary = DowngradeAdversary(b"s", 3, "suite_inject")
        hello = _parse_hello(adversary.process_chunk(wire))
        assert hello.cipher_suites[1:] == (0x003C, 0x009C)
        assert hello.cipher_suites[0] not in (0x003C, 0x009C)

    def test_forge_appends_announcement_behind_the_hello(self):
        wire = _client_hello_record()
        adversary = DowngradeAdversary(b"s", 4, "forge_announcement")
        out = adversary.process_chunk(wire)
        buffer = RecordBuffer()
        buffer.feed(out)
        records = buffer.pop_records()
        assert [r.content_type for r in records] == [
            ContentType.HANDSHAKE,
            ContentType.MBTLS_ENCAPSULATED,
        ]
        encap = EncapsulatedRecord.from_record(records[1])
        assert 2 <= encap.subchannel_id <= 9

    def test_replay_injects_byte_identical_prior_announcement(self):
        wire = _client_hello_record()
        adversary = DowngradeAdversary(b"s", 5, "replay_announcement")
        out = adversary.process_chunk(wire)
        assert out == wire + forged_announcement_bytes(1)

    def test_suppress_deletes_announcements_only(self):
        announcement = forged_announcement_bytes(1)
        wire = _client_hello_record()
        adversary = DowngradeAdversary(b"s", 6, "suppress_announcement")
        assert adversary.process_chunk(announcement) is None
        assert adversary.process_chunk(wire) == wire
        assert len(adversary.applied) == 1

    def test_blind_mode_passes_non_tls_streams_verbatim(self):
        adversary = DowngradeAdversary(b"s", 0, "strip_support")
        garbage = b"\xff\xffnot a TLS record at all" * 3
        assert adversary.process_chunk(garbage) == garbage
        # Once blind, even well-formed records pass untouched.
        wire = _client_hello_record()
        assert adversary.process_chunk(wire) == wire
        assert adversary.applied == []

    def test_same_seed_same_attack(self):
        wire = _client_hello_record(suites=(0x003C, 0x009C, 0x1301))
        outputs = set()
        for _ in range(3):
            adversary = DowngradeAdversary(b"det", 2)
            outputs.add(adversary.process_chunk(wire))
        assert len(outputs) == 1

    def test_chunk_boundaries_do_not_change_the_attack(self):
        wire = _client_hello_record(suites=(0x003C, 0x009C, 0x1301))
        whole = DowngradeAdversary(b"det", 2).process_chunk(wire)
        dribble = DowngradeAdversary(b"det", 2)
        parts = [dribble.process_chunk(bytes([b])) or b"" for b in wire]
        assert b"".join(parts) == whole


class TestDelegationTamper:
    """The mdTLS delegation-certificate forgeries (satellite of the
    proxy-signature party): expired warrants, swapped middlebox keys,
    corrupted signatures, and proxy signatures over truncated transcripts
    must all end detected, never silent."""

    def _warrant_hello(self, pki):
        from repro.wire.mdtls import DelegationCertificate, DelegationCertificateExtension

        delegator = pki.credential("client.example")
        mbox = pki.credential("mbox")
        warrant = DelegationCertificate.issue(
            delegator=delegator.certificate.subject,
            delegator_key=delegator.private_key,
            delegator_chain=delegator.encoded_chain(),
            middlebox="mbox",
            middlebox_key=mbox.private_key.public_key,
            not_before=0.0,
            not_after=1000.0,
        )
        extension = DelegationCertificateExtension((warrant,)).to_extension()
        return warrant, _client_hello_record(extensions=[extension])

    def test_every_tamper_variant_breaks_warrant_verification(self, pki):
        """Across seeds the DRBG exercises all three forgeries, and each
        rewritten warrant fails verification at a warrant-checking party."""
        from repro.errors import CertificateError
        from repro.wire.extensions import ExtensionType as ExtType
        from repro.wire.mdtls import DelegationCertificateExtension

        _, wire = self._warrant_hello(pki)
        details = set()
        for index in range(12):
            adversary = DowngradeAdversary(
                b"td-%d" % index, 0, "tamper_delegation"
            )
            out = adversary.process_chunk(wire)
            assert adversary.applied, "tamper never fired"
            details.add(adversary.applied[0].detail.split(" ", 1)[0])
            hello = _parse_hello(out)
            extension = hello.find_extension(ExtType.DELEGATION_CERTIFICATE)
            (forged,) = DelegationCertificateExtension.from_extension(
                extension
            ).warrants
            with pytest.raises(CertificateError):
                forged.verify(
                    pki.trust,
                    now=500.0,
                    middlebox="mbox",
                    middlebox_key=pki.credential("mbox").private_key.public_key,
                )
        assert details == {"shifted", "swapped", "corrupted"}

    def test_tamper_is_noop_without_the_extension(self, pki):
        wire = _client_hello_record()
        adversary = DowngradeAdversary(b"td", 0, "tamper_delegation")
        assert adversary.process_chunk(wire) == wire
        assert adversary.applied == []

    def test_tamper_delegation_detected_on_mdtls_middlebox(self):
        index = ATTACK_KINDS.index("tamper_delegation")
        verdict = run_case("mdtls_middlebox", DowngradeCase(b"st-0", index))
        assert verdict.verdict == "detected", verdict.describe()
        assert verdict.attacks, "the forgery never fired"

    def test_tamper_delegation_vacuous_without_middleboxes(self):
        """A middlebox-free mdTLS hello carries no warrants to forge."""
        index = ATTACK_KINDS.index("tamper_delegation")
        verdict = run_case("mdtls", DowngradeCase(b"st-0", index))
        assert verdict.verdict == "harmless", verdict.describe()
        assert verdict.attacks == ()

    def test_proxy_signature_over_truncated_transcript_rejected(self, pki, rng):
        """A proxy signature by the *warranted* key but over a truncated
        transcript hash must not complete the client's chain verify."""
        from hashlib import sha256

        from repro.baselines.mdtls import MdTLSDeployment
        from repro.wire.handshake import HandshakeType
        from repro.wire.mdtls import ProxySignature

        deployment = MdTLSDeployment(
            rng=rng.fork(b"trunc"),
            trust_store=pki.trust,
            client_credential=pki.credential("client"),
            server_credential=pki.credential("server"),
            middleboxes=[("mbox", pki.credential("mbox"))],
        )
        client = deployment.build_client()
        mbox = deployment.build_middlebox(0)
        server = deployment.build_server()
        mbox_key = pki.credential("mbox").private_key
        truncated = sha256(b"truncated transcript").digest()

        def tamper(data: bytes) -> bytes:
            buffer = RecordBuffer()
            buffer.feed(data)
            out = bytearray()
            for record in buffer.pop_records():
                if record.content_type == ContentType.HANDSHAKE:
                    handshakes = HandshakeBuffer()
                    handshakes.feed(record.payload)
                    messages = handshakes.pop_messages()
                    rebuilt = b""
                    for message in messages:
                        if message.msg_type == HandshakeType.MDTLS_PROXY_SIGNATURE:
                            forged = ProxySignature(
                                middlebox="mbox",
                                direction=1,
                                signature=mbox_key.sign(
                                    ProxySignature.signed_payload(1, truncated)
                                ),
                            )
                            message = Handshake(
                                msg_type=HandshakeType.MDTLS_PROXY_SIGNATURE,
                                body=forged.encode_body(),
                            )
                        rebuilt += message.encode()
                    record = Record(
                        content_type=ContentType.HANDSHAKE,
                        payload=rebuilt,
                        version=record.version,
                    )
                out += record.encode()
            return bytes(out)

        client.start(), mbox.start(), server.start()
        for _ in range(12):
            data = client.data_to_send()
            if data:
                mbox.receive_down(data)
            data = mbox.data_to_send_up()
            if data:
                server.receive_bytes(data)
            data = server.data_to_send()
            if data:
                mbox.receive_up(data)
            data = mbox.data_to_send_down()
            if data:
                client.receive_bytes(tamper(data))
        assert not client.established
        assert client.abort is not None
        assert client.abort.alert == "decrypt_error"


class TestSelftestScoring:
    def test_case_replays_from_seed_and_index_alone(self):
        first = run_case("mbtls", DowngradeCase(b"replay", 0))
        second = run_case("mbtls", DowngradeCase(b"replay", 0))
        assert first == second
        assert first.kind == ATTACK_KINDS[0]

    def test_strip_support_detected_at_server_on_mbtls(self):
        verdict = run_case("mbtls", DowngradeCase(b"st-0", 0))
        assert verdict.verdict == "detected"
        assert verdict.origin == "server"
        assert "decrypt_error" in verdict.detail

    def test_suite_attacks_detected_on_mbtls(self):
        for index in (2, 3):  # suite_delete, suite_inject
            verdict = run_case("mbtls", DowngradeCase(b"st-0", index))
            assert verdict.verdict == "detected", verdict.describe()
            assert verdict.origin == "server"

    def test_forged_announcement_never_joins(self):
        verdict = run_case("mbtls", DowngradeCase(b"st-0", 4))
        assert verdict.verdict == "detected"
        assert "rejected" in verdict.detail

    def test_corrupt_secondary_is_accounted_fallback(self):
        verdict = run_case("mbtls_middlebox", DowngradeCase(b"st-0", 7))
        assert verdict.verdict in ("fallback", "detected"), verdict.describe()

    def test_baseline_round_trips(self):
        base = baseline_outcome("mbtls", b"st-0")
        assert base.established and base.quiesced and not base.aborts
        assert len(base.delivered_right) == 2 and len(base.delivered_left) == 1

    def test_scorecard_has_no_silent_downgrades(self):
        report = run_selftest(
            impls=("mbtls", "mbtls_middlebox"), seeds=(b"st-0",)
        )
        assert report.ok, [v.describe() for v in report.silent_downgrades]
        assert report.silent_downgrades == ()
        for card in report.scorecards:
            assert set(card.properties) == set(PROPERTIES)
            assert card.properties["P6"] == "pass"
            assert card.properties["P7"] == "pass"

    def test_report_is_deterministic(self):
        digests = {
            run_selftest(impls=("mbtls",), seeds=(b"det-0",)).digest()
            for _ in range(2)
        }
        assert len(digests) == 1

    def test_report_json_is_serializable(self):
        report = run_selftest(impls=("tls",), seeds=(b"st-0",))
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["ok"] is True
        assert payload["scorecards"][0]["impl"] == "tls"
        assert len(payload["scorecards"][0]["cases"]) == len(ATTACK_KINDS)


class TestFallbackAccounting:
    def test_fail_closed_client_refuses_degraded_path(self):
        """allow_fallback=False: a corrupted secondary must kill the
        session with insufficient_security, not quietly shed the box."""
        scenario = Scenario(b"fc-closed")
        adversary = DowngradeAdversary(b"fc-closed", 7, "corrupt_secondary")
        scenario.attack_hop("client", "mbox", adversary, "mbox")
        engine, service, events = scenario.deploy_mbtls(allow_fallback=False)
        assert adversary.applied
        assert not engine.established
        assert engine.fallback_decisions
        assert engine.abort is not None
        assert engine.abort.alert == "insufficient_security"
        assert engine.abort.origin == "client"

    def test_fallback_allowed_is_counted(self):
        """Default policy: the session survives without the middlebox, and
        the decision shows up in the session.fallback counter family."""
        with obs.scoped() as plane:
            scenario = Scenario(b"fc-open")
            adversary = DowngradeAdversary(b"fc-open", 7, "corrupt_secondary")
            scenario.attack_hop("client", "mbox", adversary, "mbox")
            engine, service, events = scenario.deploy_mbtls()
            total = sum(
                value
                for _, value in plane.metrics.iter_counters("session.fallback")
            )
        assert adversary.applied
        assert engine.established
        assert engine.middleboxes == ()
        assert engine.fallback_decisions
        assert total >= 1

    def test_duplicate_support_extension_is_fatal_to_decode(self):
        from repro.wire.codec import Reader
        from repro.wire.extensions import (
            MiddleboxSupportExtension,
            decode_extensions,
            encode_extensions,
        )

        support = MiddleboxSupportExtension().to_extension()
        with pytest.raises(DecodeError):
            decode_extensions(Reader(encode_extensions([support, support])))
        assert support.extension_type == int(ExtensionType.MIDDLEBOX_SUPPORT)


class TestSelftestCli:
    def test_quick_scorecard_single_impl(self, capsys):
        assert main(["selftest", "--quick", "--impl", "mbtls"]) == 0
        out = capsys.readouterr().out
        assert "zero silent downgrades" in out
        assert "P1" in out and "P7" in out
        assert "FAIL" not in out

    def test_replay_one_case(self, capsys):
        assert main([
            "selftest", "--impl", "mbtls", "--seed", "st-0", "--index", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "kind=strip_support: detected" in out
        assert "origin=server" in out

    def test_replay_json(self, capsys):
        assert main([
            "selftest", "--impl", "mbtls", "--seed", "st-0", "--index", "2",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "detected"
        assert payload["kind"] == "suite_delete"

    def test_replay_requires_impl(self):
        with pytest.raises(SystemExit):
            main(["selftest", "--index", "0"])

    def test_unknown_impl_rejected(self):
        with pytest.raises(SystemExit):
            main(["selftest", "--impl", "not-a-protocol"])
