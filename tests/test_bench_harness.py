"""The benchmark harness itself: populations, runners, topologies, tables."""


import pytest

from repro.bench.alexa import PAPER_COUNTS, ServerDefect, generate_alexa_population
from repro.bench.cpu import CONFIGURATIONS, measure_configuration
from repro.bench.interop import FetchOutcome, fetch_site
from repro.bench.population import NETWORK_TYPE_COUNTS, generate_population
from repro.bench.scenarios import Pki, build_chain_network, run_fetch
from repro.bench.tables import render_series, render_table
from repro.bench.topologies import build_wan, path_permutations
from repro.bench.viability import run_site
from repro.core.config import MiddleboxRole
from repro.crypto.drbg import HmacDrbg
from repro.netsim.filters import FilterPolicy


class TestPopulations:
    def test_table2_counts_match_paper(self, rng):
        sites = generate_population(rng)
        assert len(sites) == 241 == sum(NETWORK_TYPE_COUNTS.values())
        by_type = {}
        for site in sites:
            by_type[site.network_type] = by_type.get(site.network_type, 0) + 1
        assert by_type == NETWORK_TYPE_COUNTS

    def test_observed_world_has_no_strict_filters(self, rng):
        sites = generate_population(rng)
        policies = {site.filter_policy for site in sites}
        assert FilterPolicy.RESET_ON_UNKNOWN not in policies
        assert FilterPolicy.DROP_UNKNOWN_TYPES not in policies

    def test_strict_fraction_ablation(self, rng):
        sites = generate_population(rng, strict_fraction=1.0)
        assert all(
            site.filter_policy == FilterPolicy.RESET_ON_UNKNOWN for site in sites
        )

    def test_alexa_counts_match_paper(self, rng):
        servers = generate_alexa_population(rng)
        assert len(servers) == PAPER_COUNTS["total"]
        counts = {}
        for server in servers:
            counts[server.defect] = counts.get(server.defect, 0) + 1
        assert counts[ServerDefect.NONE] == PAPER_COUNTS["success"]
        assert counts[ServerDefect.EXPIRED_CERT] == PAPER_COUNTS["bad_certificate"]
        assert counts[ServerDefect.NO_AES256] == PAPER_COUNTS["no_common_cipher"]
        assert counts[ServerDefect.REDIRECT] == PAPER_COUNTS["redirect"]
        assert counts[ServerDefect.BROKEN] == PAPER_COUNTS["unknown"]

    def test_alexa_shuffle_deterministic(self):
        a = generate_alexa_population(HmacDrbg(b"x"))
        b = generate_alexa_population(HmacDrbg(b"x"))
        assert [s.defect for s in a] == [s.defect for s in b]


class TestInteropClassification:
    @pytest.mark.parametrize(
        "defect,expected",
        [
            (ServerDefect.NONE, FetchOutcome.SUCCESS),
            (ServerDefect.NO_HTTPS, FetchOutcome.NO_HTTPS),
            (ServerDefect.EXPIRED_CERT, FetchOutcome.BAD_CERTIFICATE),
            (ServerDefect.NO_AES256, FetchOutcome.NO_COMMON_CIPHER),
            (ServerDefect.REDIRECT, FetchOutcome.REDIRECT),
            (ServerDefect.BROKEN, FetchOutcome.UNKNOWN),
        ],
    )
    def test_each_defect_classified(self, rng, pki, defect, expected):
        from repro.bench.alexa import SyntheticServer

        site = SyntheticServer(rank=1, hostname="probe.example", defect=defect)
        assert fetch_site(site, pki, rng) == expected


class TestViability:
    @pytest.mark.parametrize(
        "policy,handshake_ok,data_ok",
        [
            (FilterPolicy.PASSTHROUGH, True, True),
            (FilterPolicy.GRAMMAR_CHECK, True, True),
            # A strict normalizer dropping unknown ContentTypes starves the
            # middlebox of its secondary handshake: the primary session
            # still establishes, but the data plane stalls at the keyless
            # middlebox — operationally a failure.
            (FilterPolicy.DROP_UNKNOWN_TYPES, True, False),
            (FilterPolicy.RESET_ON_UNKNOWN, False, False),
        ],
    )
    def test_policy_outcomes(self, rng, pki, policy, handshake_ok, data_ok):
        from repro.bench.population import ClientSite

        site = ClientSite(
            name="probe", network_type="Test", filter_policy=policy,
            latency_to_core=0.005,
        )
        result = run_site(site, pki, rng)
        assert result.handshake_ok == handshake_ok
        assert result.data_ok == data_ok
        if data_ok:
            assert result.middlebox_joined


class TestScenarioRunner:
    def test_tls_fetch_timing(self, rng, pki):
        network = build_chain_network([0.010, 0.020])
        result = run_fetch(network, pki, rng, protocol="tls")
        assert result.ok
        # TCP (1 RTT) + TLS (2 RTT), RTT = 60 ms.
        assert result.handshake_seconds == pytest.approx(0.180, abs=0.005)

    def test_mbtls_fetch_with_middlebox(self, rng, pki):
        network = build_chain_network([0.010, 0.020], ["client", "mb", "server"])
        result = run_fetch(
            network, pki, rng, protocol="mbtls",
            middlebox_hosts=[("mb", MiddleboxRole.CLIENT_SIDE)],
            server_is_mbtls=False,
        )
        assert result.ok
        assert len(result.client_middleboxes) == 1

    def test_split_fetch(self, rng, pki):
        network = build_chain_network([0.010, 0.020], ["client", "mb", "server"])
        result = run_fetch(
            network, pki, rng, protocol="split",
            middlebox_hosts=[("mb", MiddleboxRole.CLIENT_SIDE)],
        )
        assert result.ok


class TestCpuHarness:
    def test_tls_configuration_measures(self, rng):
        pki = Pki(rng=rng.fork(b"pki"))
        result = measure_configuration("tls", pki, rng, trials=1)
        assert result.client > 0 and result.server > 0
        assert result.middlebox == 0.0

    def test_all_configurations_defined(self):
        assert set(CONFIGURATIONS) == {
            "tls", "mbtls-0", "split-1", "mbtls-1c", "mbtls-1s", "mbtls-2s",
            "mbtls-3s",
        }


class TestWanTopology:
    def test_twelve_permutations(self):
        assert len(path_permutations()) == 12

    def test_latencies_symmetric_and_complete(self):
        from repro.bench.topologies import REGIONS, one_way

        for a in REGIONS:
            for b in REGIONS:
                if a != b:
                    assert one_way(a, b) == one_way(b, a) > 0

    def test_build_wan(self):
        network = build_wan("au", "usw", "use")
        latency, _ = network.path_metrics(["client", "mbox", "server"])
        assert latency == pytest.approx(0.070 + 0.035)


class TestRenderers:
    def test_render_table(self):
        output = render_table("Title", ["a", "bb"], [[1, 22], [333, 4]])
        lines = output.splitlines()
        assert lines[0] == "Title"
        assert "333" in output and "22" in output

    def test_render_series(self):
        output = render_series("Fig", {"s1": [(512, 1.5)]}, "bytes", "gbps")
        assert "s1" in output and "512" in output


class TestCryptoBenchGate:
    """The perf-smoke regression gate (pure logic; no timing here)."""

    def _report(self, seal=6.0, chain=5.0):
        return {
            "primitives": [
                {"suite": "aes-128-gcm", "seal_speedup": seal},
                {"suite": "chacha20-poly1305"},  # no scalar comparison
            ],
            "chain": {"speedup": chain},
        }

    def test_identical_reports_pass(self):
        from repro.bench.crypto import check_regression

        report = self._report()
        assert check_regression(report, report) == []

    def test_regression_beyond_tolerance_fails(self):
        from repro.bench.crypto import check_regression

        problems = check_regression(
            self._report(seal=4.0), self._report(seal=8.0)
        )
        assert any("regressed" in p for p in problems)

    def test_small_wobble_within_tolerance_passes(self):
        from repro.bench.crypto import check_regression

        assert check_regression(
            self._report(seal=6.0, chain=4.5), self._report(seal=7.0, chain=5.0)
        ) == []

    def test_hard_floors_enforced_without_baseline(self):
        from repro.bench.crypto import check_regression

        problems = check_regression(self._report(seal=2.5, chain=1.5), {})
        assert any("3x floor" in p for p in problems)
        assert any("2x floor" in p for p in problems)

    def test_legacy_gcm_seal_matches_fast_path(self):
        from repro.bench.crypto import _legacy_gcm_seal
        from repro.crypto.gcm import AESGCM

        gcm = AESGCM(bytes(range(16)))
        nonce, aad = bytes(12), b"hdr"
        plaintext = bytes(range(256)) * 4  # past both fast-path thresholds
        assert _legacy_gcm_seal(gcm, nonce, plaintext, aad) == gcm.encrypt(
            nonce, plaintext, aad
        )
