"""The BlindBox baseline: encrypted pattern matching and its limits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.blindbox import (
    BlindBoxDetector,
    RuleAuthority,
    TokenStream,
)
from repro.errors import PolicyError


@pytest.fixture
def token_key(rng):
    return rng.random_bytes(32)


def build(token_key, patterns):
    authority = RuleAuthority(token_key)
    rules = [
        authority.encrypt_rule(name, pattern) for name, pattern in patterns
    ]
    return TokenStream(token_key), BlindBoxDetector(rules)


class TestMatching:
    def test_detects_pattern_in_stream(self, token_key):
        stream, detector = build(token_key, [("exfil", b"SECRET-DOCUMENT")])
        matches = detector.inspect(stream.tokenize(b"...the SECRET-DOCUMENT is..."))
        assert [match.rule for match in matches] == ["exfil"]

    def test_no_false_positive(self, token_key):
        stream, detector = build(token_key, [("exfil", b"SECRET-DOCUMENT")])
        assert detector.inspect(stream.tokenize(b"perfectly innocent traffic")) == []

    def test_match_across_chunk_boundary(self, token_key):
        stream, detector = build(token_key, [("split", b"FORBIDDEN")])
        matches = detector.inspect(stream.tokenize(b"xxFORB"))
        matches += detector.inspect(stream.tokenize(b"IDDENyy"))
        assert [match.rule for match in matches] == ["split"]

    def test_no_duplicate_reports(self, token_key):
        stream, detector = build(token_key, [("r", b"NEEDLE-X")])
        total = []
        for chunk in (b"..NEEDLE-X..", b"nothing", b"more nothing"):
            total += detector.inspect(stream.tokenize(chunk))
        assert len(total) == 1

    def test_multiple_rules_and_occurrences(self, token_key):
        stream, detector = build(
            token_key, [("a", b"PATTERN-A"), ("b", b"PATTERN-B")]
        )
        matches = detector.inspect(
            stream.tokenize(b"PATTERN-A then PATTERN-B then PATTERN-A")
        )
        assert sorted(match.rule for match in matches) == ["a", "a", "b"]


class TestPrivacyProperties:
    def test_detector_never_sees_plaintext(self, token_key):
        """The middlebox's entire input is PRF outputs: no plaintext bytes."""
        stream, detector = build(token_key, [("r", b"RULEWORD")])
        plaintext = b"the quick brown fox RULEWORD jumps"
        tokens = stream.tokenize(plaintext)
        blob = b"".join(tokens)
        for window in range(4, 9):
            for start in range(len(plaintext) - window):
                assert plaintext[start : start + window] not in blob

    def test_different_keys_produce_unlinkable_tokens(self, rng):
        key_a, key_b = rng.random_bytes(32), rng.random_bytes(32)
        tokens_a = TokenStream(key_a).tokenize(b"same plaintext here")
        tokens_b = TokenStream(key_b).tokenize(b"same plaintext here")
        assert not set(tokens_a) & set(tokens_b)

    def test_deterministic_within_session(self, token_key):
        # The functional property (and the privacy cost BlindBox accepts):
        # equal windows encrypt equally within a session.
        a = TokenStream(token_key).tokenize(b"hello world!")
        b = TokenStream(token_key).tokenize(b"hello world!")
        assert a == b


class TestLimits:
    def test_pattern_shorter_than_window_rejected(self, token_key):
        authority = RuleAuthority(token_key)
        with pytest.raises(PolicyError):
            authority.encrypt_rule("tiny", b"abc")

    def test_short_token_key_rejected(self):
        with pytest.raises(PolicyError):
            TokenStream(b"short")

    def test_cannot_transform_data(self, token_key):
        """The design-space point: BlindBox supports *matching only* — the
        detector API has no way to emit modified traffic."""
        _, detector = build(token_key, [("r", b"RULEWORD")])
        assert not hasattr(detector, "on_data")
        assert not callable(getattr(detector, "transform", None))

    @settings(max_examples=30, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=200))
    def test_tokenizer_never_crashes(self, payload):
        stream = TokenStream(b"k" * 32)
        tokens = stream.tokenize(payload)
        assert all(len(token) == 16 for token in tokens)
