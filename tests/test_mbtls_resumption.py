"""mbTLS session resumption (§3.5): every sub-handshake abbreviated."""


from helpers import MbTLSScenario, tagger
from repro.core.config import MiddleboxRole
from repro.core.resumption import MiddleboxSessionStore
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode, Platform
from repro.tls.session import ClientSessionStore, ServerSessionCache


def resumable_world(rng, pki, mbox_tls_extra=None, client_cfg_extra=None):
    """Two scenario runs sharing all resumption state."""
    client_sessions = ClientSessionStore()
    middlebox_sessions = MiddleboxSessionStore()
    mbox_cache = ServerSessionCache()
    server_cache = ServerSessionCache()

    def build(tag: bytes):
        return MbTLSScenario(
            pki,
            rng.fork(tag),
            mbox_specs=[
                (
                    "proxy",
                    MiddleboxRole.CLIENT_SIDE,
                    tagger(b"+P"),
                    {"session_cache": mbox_cache, **(mbox_tls_extra or {})},
                )
            ],
            server_kind="tls",
            client_tls_kwargs={"session_store": client_sessions},
            client_config_kwargs={
                "middlebox_session_store": middlebox_sessions,
                **(client_cfg_extra or {}),
            },
        )

    # The legacy server needs a session cache too; patch the helper config.
    def deploy_with_cache(scenario):
        # Rebind the server with a shared cache by re-listening.
        from repro.netsim.driver import EngineDriver
        from repro.tls.config import TLSConfig
        from repro.tls.engine import TLSServerEngine
        from repro.tls.events import ApplicationData

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(
                    rng=scenario.rng.fork(b"srv"),
                    credential=pki.credential("server"),
                    session_cache=server_cache,
                )
            )
            driver = EngineDriver(engine, socket)

            def on_event(event):
                scenario.server_events.append(event)
                if isinstance(event, ApplicationData):
                    scenario.server_received.append(event.data)
                    driver.send_application_data(b"REPLY:" + event.data)

            driver.on_event = on_event
            driver.start()

        scenario.network.host("server").listen(443, accept)
        return scenario

    return build, deploy_with_cache


class TestClientSideResumption:
    def test_full_then_abbreviated(self, rng, pki):
        build, with_cache = resumable_world(rng, pki)

        first = with_cache(build(b"run1")).run_client(b"PING")
        assert first.client_received == [b"REPLY:PING+P"]
        assert not first.established_event.resumed
        assert not first.middlebox_engine()._secondary.resumed

        second = with_cache(build(b"run2")).run_client(b"PING")
        assert second.client_received == [b"REPLY:PING+P"]
        event = second.established_event
        assert event.resumed, "primary handshake must be abbreviated"
        assert [m.name for m in event.middleboxes] == ["proxy"]
        # The SECONDARY handshake was abbreviated too: the middlebox's
        # engine resumed from its cache keyed by the primary session ID.
        assert second.middlebox_engine()._secondary.resumed
        assert second.middlebox_engine().joined

    def test_resumed_session_is_faster(self, rng, pki):
        build, with_cache = resumable_world(rng, pki)
        first = with_cache(build(b"run1")).run_client(b"PING")
        first_done = first.network.sim.now
        second = with_cache(build(b"run2")).run_client(b"PING")
        second_done = second.network.sim.now
        # Abbreviated handshakes save a full round trip.
        assert second_done < first_done

    def test_no_certificate_exchange_on_resumption(self, rng, pki):
        from repro.netsim.adversary import GlobalAdversary

        build, with_cache = resumable_world(rng, pki)
        with_cache(build(b"run1")).run_client(b"PING")
        second = with_cache(build(b"run2"))
        adversary = GlobalAdversary(second.network)
        second.run_client(b"PING")
        observed = adversary.observed_bytes()
        # Neither the server's nor the middlebox's certificate crossed the
        # wire: no Certificate message means no chain bytes.
        server_chain = pki.credential("server").certificate.encode()
        proxy_chain = pki.credential("proxy").certificate.encode()
        assert server_chain not in observed
        assert proxy_chain not in observed

    def test_middlebox_cache_loss_falls_back_to_full(self, rng, pki):
        build, with_cache = resumable_world(rng, pki)
        first = with_cache(build(b"run1")).run_client(b"PING")
        # Wipe only the middlebox's cache: its secondary handshake must fall
        # back to a full handshake while everything still works.
        first.services[0].drivers[0].engine.config.tls.session_cache._sessions.clear()
        second = with_cache(build(b"run2")).run_client(b"PING")
        assert second.client_received == [b"REPLY:PING+P"]
        assert not second.middlebox_engine()._secondary.resumed
        assert second.middlebox_engine().joined

    def test_measurement_carried_forward_on_resumption(self, rng, pki):
        """§3.5: 'a new attestation is not required' — the measurement from
        the original attested session is carried forward."""
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        code = EnclaveCode("proxy", "1.0", b"audited")
        enclave = platform.launch_enclave(code)
        verifier = service.verifier({code.measurement})

        build, with_cache = resumable_world(
            rng, pki,
            mbox_tls_extra={"enclave": enclave},
            client_cfg_extra={
                "require_middlebox_attestation": True,
                "middlebox_attestation_verifier": verifier,
            },
        )
        first = with_cache(build(b"run1")).run_client(b"PING")
        assert first.established_event.middleboxes[0].measurement == code.measurement

        second = with_cache(build(b"run2")).run_client(b"PING")
        event = second.established_event
        assert event.resumed
        assert second.middlebox_engine()._secondary.resumed
        # No SGXAttestation message was sent, yet the measurement is known.
        assert event.middleboxes[0].measurement == code.measurement
