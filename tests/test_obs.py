"""The observability plane: registry, tracer, and ground-truth agreement.

The load-bearing test here is :class:`TestGroundTruth`: the per-hop
sealed/opened record counts the metrics plane reports for a 2-middlebox
session must equal what a :class:`~repro.netsim.adversary.GlobalAdversary`
actually captured on every directed hop. Metrics that disagree with the
wire are worse than no metrics.
"""

import json

import pytest

from repro import obs
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, SCHEMA_VERSION
from repro.obs.tracing import SpanRecorder


class TestMetricsRegistry:
    def test_counter_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("records", party="client").inc()
        registry.counter("records", party="client").inc(2)
        registry.counter("records", party="server").inc()
        assert registry.counter_value("records", party="client") == 3
        assert registry.counter_value("records", party="server") == 1

    def test_counter_value_does_not_create_series(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never", party="x") == 0
        assert registry.snapshot()["counters"] == {}

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.add(-2)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["depth"][0]["value"] == 3

    def test_histogram_buckets_place_each_observation_once(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("batch", COUNT_BUCKETS)
        for value in (1, 3, 200):
            histogram.observe(value)
        entry = registry.snapshot()["histograms"]["batch"][0]
        assert entry["buckets"]["1"] == 1
        assert entry["buckets"]["4"] == 1  # 3 lands in (2, 4]
        assert entry["buckets"]["+Inf"] == 1  # 200 exceeds every bound
        assert entry["count"] == 3
        assert entry["sum"] == 204
        assert entry["min"] == 1 and entry["max"] == 200

    def test_snapshot_is_sorted_and_json_stable(self):
        def build():
            registry = MetricsRegistry()
            # Insertion order differs between the two builds ...
            for party in ("b", "a", "c"):
                registry.counter("records", party=party).inc()
            return registry

        first, second = build().to_json(), build().to_json()
        assert first == second
        parties = [
            entry["labels"]["party"]
            for entry in json.loads(first)["counters"]["records"]
        ]
        # ... but the snapshot is sorted by labels.
        assert parties == sorted(parties)

    def test_schema_version_present(self):
        assert MetricsRegistry().snapshot()["schema_version"] == SCHEMA_VERSION


class TestSpanRecorder:
    def test_nesting_depth_follows_parents(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        outer = recorder.begin("session", party="client")
        inner = recorder.begin("handshake", party="client", parent=outer)
        leaf = recorder.begin("flight", party="client", parent=inner)
        assert (outer.depth, inner.depth, leaf.depth) == (0, 1, 2)

    def test_spans_ordered_by_start_then_index(self):
        times = iter([0.0, 0.0, 1.0, 2.0, 3.0, 4.0])
        recorder = SpanRecorder(clock=lambda: next(times))
        first = recorder.begin("first")
        second = recorder.begin("second")  # same start time
        recorder.end(first)
        recorder.end(second)
        names = [span["name"] for span in recorder.snapshot()["spans"]]
        assert names == ["first", "second"]

    def test_end_is_idempotent_and_none_safe(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        span = recorder.begin("s")
        recorder.end(span, outcome="ok")
        recorder.end(span, outcome="overwritten?")
        recorder.end(None)  # engines end spans they may never have begun
        snapshot = recorder.snapshot()["spans"]
        assert len(snapshot) == 1
        assert snapshot[0]["attrs"]["outcome"] == "ok"

    def test_marks_record_time_and_attrs(self):
        recorder = SpanRecorder(clock=lambda: 7.0)
        recorder.mark("driver.timeout", party="client", kind="idle")
        mark = recorder.snapshot()["marks"][0]
        assert mark["time"] == 7.0
        assert mark["name"] == "driver.timeout"
        assert mark["attrs"]["kind"] == "idle"


class TestPlane:
    def test_scoped_restores_previous_plane(self):
        before = obs.plane()
        with obs.scoped() as inner:
            assert obs.plane() is inner
            assert obs.plane() is not before
        assert obs.plane() is before

    def test_clock_defaults_to_zero_until_bound(self):
        plane = obs.ObservabilityPlane()
        assert plane.now() == 0.0
        plane.bind_clock(lambda: 42.0)
        assert plane.now() == 42.0

    def test_wall_time_off_by_default(self):
        assert obs.ObservabilityPlane().wall_time is False


@pytest.fixture(scope="module")
def observed_run():
    from repro.bench.observability import run_observed

    return run_observed(seed="test-obs", flights=2)


class TestGroundTruth:
    """Metrics must agree with the adversary's packet-level view."""

    def test_session_established(self, observed_run):
        assert observed_run.established
        assert not observed_run.degraded
        assert len(observed_run.reply) == 2 * observed_run.response_size

    def test_per_hop_counts_match_adversary(self, observed_run):
        from repro.bench.observability import hop_directions, wire_record_counts

        wire = wire_record_counts(observed_run.adversary)
        metrics = observed_run.plane.metrics
        directions = hop_directions(observed_run.path)
        assert len(directions) == 6  # 3 hops, both directions
        for direction in directions:
            hop = f"{direction['sender']}->{direction['receiver']}"
            on_wire = wire[hop].get("application_data", 0)
            assert on_wire > 0, f"no application data captured on {hop}"
            sealed = metrics.counter_value(
                "records_sealed", party=direction["seal_party"],
                type="application_data")
            opened = metrics.counter_value(
                "records_opened", party=direction["open_party"],
                type="application_data")
            assert sealed == on_wire, f"{hop}: sealed {sealed} != wire {on_wire}"
            assert opened == on_wire, f"{hop}: opened {opened} != wire {on_wire}"

    def test_handshake_spans_cover_all_parties(self, observed_run):
        spans = observed_run.plane.tracer.snapshot()["spans"]
        parties = {span["party"] for span in spans if span["name"] == "handshake.tls"}
        assert {"client", "server", "mb1:secondary", "mb2:secondary"} <= parties
        for span in spans:
            if span["end"] is not None:
                assert span["end"] >= span["start"]

    def test_key_installs_per_hop(self, observed_run):
        metrics = observed_run.plane.metrics
        hop_installs = {
            labels["party"]: value
            for labels, value in metrics.iter_counters("key_installs")
            if labels.get("kind") == "hop"
        }
        # Every hop-chain participant installs its hop keys exactly once.
        assert hop_installs == {"client": 1, "mb1": 1, "mb2": 1}


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        from repro.bench.observability import metrics_report, run_observed

        def render():
            report = metrics_report(run_observed(seed="det", flights=1))
            return json.dumps(report, indent=2, sort_keys=True)

        assert render() == render()

    def test_different_seed_same_record_counts(self):
        # Record accounting is structural: key material changes with the
        # seed, record flow does not.
        from repro.bench.observability import metrics_report, run_observed

        def counts(seed):
            report = metrics_report(run_observed(seed=seed, flights=1))
            return [
                (hop["hop"], hop["wire_application_data"])
                for hop in report["per_hop"]
            ]

        assert counts("seed-a") == counts("seed-b")

    def test_no_wall_time_in_default_metrics(self):
        from repro.bench.observability import run_observed

        run = run_observed(seed="walltime", flights=1)
        histograms = run.plane.metrics.snapshot()["histograms"]
        assert "aead_seal_seconds" not in histograms
