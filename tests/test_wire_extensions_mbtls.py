"""Extensions (including MiddleboxSupport) and the mbTLS wire messages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.wire.codec import Reader
from repro.wire.extensions import (
    AttestationRequestExtension,
    Extension,
    MiddleboxSupportExtension,
    ServerNameExtension,
    SessionTicketExtension,
    decode_extensions,
    encode_extensions,
)
from repro.wire.mbtls import (
    EncapsulatedRecord,
    HopKeys,
    KeyMaterial,
    MiddleboxAnnouncement,
)
from repro.wire.records import ContentType, Record


class TestExtensions:
    def test_server_name_roundtrip(self):
        extension = ServerNameExtension("www.example.com").to_extension()
        assert ServerNameExtension.from_extension(extension).host_name == "www.example.com"

    def test_session_ticket_roundtrip(self):
        extension = SessionTicketExtension(b"ticket-bytes").to_extension()
        assert SessionTicketExtension.from_extension(extension).ticket == b"ticket-bytes"

    def test_attestation_request_must_be_empty(self):
        extension = AttestationRequestExtension().to_extension()
        assert AttestationRequestExtension.from_extension(extension) is not None
        with pytest.raises(DecodeError):
            AttestationRequestExtension.from_extension(
                Extension(extension.extension_type, b"junk")
            )

    def test_extension_block_roundtrip(self):
        extensions = [
            ServerNameExtension("a").to_extension(),
            Extension(0x1234, b"opaque"),
        ]
        block = encode_extensions(extensions)
        assert decode_extensions(Reader(block)) == extensions

    def test_absent_block_is_empty(self):
        assert decode_extensions(Reader(b"")) == []

    def test_duplicate_middlebox_support_is_rejected(self):
        """A stripped-and-re-added MiddleboxSupport duplicate is exactly
        what a downgrade box produces; first-one-wins parsing would let the
        endpoints disagree about which copy is authoritative."""
        support = MiddleboxSupportExtension().to_extension()
        block = encode_extensions([support, support])
        with pytest.raises(DecodeError, match="duplicate MiddleboxSupport"):
            decode_extensions(Reader(block))

    def test_duplicate_with_different_bodies_is_rejected(self):
        block = encode_extensions(
            [
                MiddleboxSupportExtension().to_extension(),
                MiddleboxSupportExtension(
                    middleboxes=("evil.example",)
                ).to_extension(),
            ]
        )
        with pytest.raises(DecodeError, match="duplicate MiddleboxSupport"):
            decode_extensions(Reader(block))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xFFFF).filter(
                    lambda t: t != int(MiddleboxSupportExtension.extension_type)
                ),
                st.binary(max_size=64),
            ),
            max_size=8,
        ),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_unknown_extensions_roundtrip_byte_identically(
        self, unknown, with_support
    ):
        """P5's legacy-interop behaviour: extensions this library does not
        understand survive a decode/encode cycle byte-for-byte, duplicates
        and all — only MiddleboxSupport gets duplicate policing."""
        extensions = [Extension(t, data) for t, data in unknown]
        if with_support:
            extensions.append(MiddleboxSupportExtension().to_extension())
        block = encode_extensions(extensions)
        decoded = decode_extensions(Reader(block))
        assert decoded == extensions
        assert encode_extensions(decoded) == block


class TestMiddleboxSupport:
    def test_roundtrip_with_members(self):
        extension = MiddleboxSupportExtension(
            client_hellos=(b"hello-one", b"hello-two"),
            middleboxes=("proxy.isp.example", "cache.isp.example"),
        ).to_extension()
        decoded = MiddleboxSupportExtension.from_extension(extension)
        assert decoded.client_hellos == (b"hello-one", b"hello-two")
        assert decoded.middleboxes == ("proxy.isp.example", "cache.isp.example")

    def test_empty_roundtrip(self):
        extension = MiddleboxSupportExtension().to_extension()
        decoded = MiddleboxSupportExtension.from_extension(extension)
        assert decoded.client_hellos == () and decoded.middleboxes == ()

    def test_truncated_rejected(self):
        extension = MiddleboxSupportExtension(client_hellos=(b"abcdef",)).to_extension()
        with pytest.raises(DecodeError):
            MiddleboxSupportExtension.from_extension(
                Extension(extension.extension_type, extension.data[:-3])
            )

    @settings(max_examples=50, deadline=None)
    @given(
        hellos=st.lists(st.binary(max_size=64), max_size=4),
        names=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=20,
            ),
            max_size=4,
        ),
    )
    def test_roundtrip_property(self, hellos, names):
        extension = MiddleboxSupportExtension(
            client_hellos=tuple(hellos), middleboxes=tuple(names)
        ).to_extension()
        decoded = MiddleboxSupportExtension.from_extension(extension)
        assert decoded.client_hellos == tuple(hellos)
        assert decoded.middleboxes == tuple(names)


class TestEncapsulated:
    def test_roundtrip(self):
        inner = Record(ContentType.HANDSHAKE, b"inner-payload")
        encap = EncapsulatedRecord(subchannel_id=7, inner=inner)
        record = encap.to_record()
        assert record.content_type == ContentType.MBTLS_ENCAPSULATED
        decoded = EncapsulatedRecord.from_record(record)
        assert decoded.subchannel_id == 7 and decoded.inner == inner

    def test_subchannel_range_enforced(self):
        inner = Record(ContentType.HANDSHAKE, b"")
        with pytest.raises(DecodeError):
            EncapsulatedRecord(subchannel_id=256, inner=inner).to_record()

    def test_wrong_outer_type_rejected(self):
        with pytest.raises(DecodeError):
            EncapsulatedRecord.from_record(Record(ContentType.HANDSHAKE, b"\x01"))

    def test_empty_payload_rejected(self):
        with pytest.raises(DecodeError):
            EncapsulatedRecord.from_record(
                Record(ContentType.MBTLS_ENCAPSULATED, b"")
            )


class TestKeyMaterial:
    def _hop(self, seed: int) -> HopKeys:
        return HopKeys(
            cipher_suite=0xC030,
            client_write_key=bytes([seed]) * 32,
            client_write_iv=bytes([seed]) * 4,
            server_write_key=bytes([seed + 1]) * 32,
            server_write_iv=bytes([seed + 1]) * 4,
            client_to_server_seq=seed,
            server_to_client_seq=seed + 10,
        )

    def test_roundtrip(self):
        material = KeyMaterial(toward_client=self._hop(1), toward_server=self._hop(5))
        decoded = KeyMaterial.from_payload(material.encode_payload())
        assert decoded == material

    def test_record_content_type(self):
        material = KeyMaterial(toward_client=self._hop(1), toward_server=self._hop(5))
        assert material.to_record().content_type == ContentType.MBTLS_KEY_MATERIAL

    def test_implausible_lengths_rejected(self):
        material = KeyMaterial(toward_client=self._hop(1), toward_server=self._hop(5))
        payload = bytearray(material.encode_payload())
        payload[3 + 2 + 16 + 2] = 0xFF  # clobber key_len high byte
        with pytest.raises(DecodeError):
            KeyMaterial.from_payload(bytes(payload))


class TestAnnouncement:
    def test_roundtrip(self):
        record = MiddleboxAnnouncement().to_record()
        assert record.content_type == ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT
        assert MiddleboxAnnouncement.from_record(record) is not None

    def test_nonempty_rejected(self):
        with pytest.raises(DecodeError):
            MiddleboxAnnouncement.from_record(
                Record(ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT, b"x")
            )
