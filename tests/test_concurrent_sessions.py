"""Multiple simultaneous sessions through one middlebox deployment."""


from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    SessionEstablished,
)
from repro.core.drivers import MiddleboxService, open_mbtls
from repro.netsim.driver import EngineDriver
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSServerEngine
from repro.tls.events import ApplicationData


class TestConcurrentSessions:
    def test_three_clients_interleaved(self, rng, pki):
        network = Network()
        for name in ("alice", "bob", "carol", "mbox", "server"):
            network.add_host(name)
        for client, latency in (("alice", 0.003), ("bob", 0.007), ("carol", 0.011)):
            network.add_link(client, "mbox", latency)
        network.add_link("mbox", "server", 0.005)

        connection_count = {"n": 0}

        def make_config():
            connection_count["n"] += 1
            serial = connection_count["n"]
            return MiddleboxConfig(
                name="mbox",
                tls=TLSConfig(
                    rng=rng.fork(b"mb%d" % serial),
                    credential=pki.credential("mbox"),
                ),
                role=MiddleboxRole.CLIENT_SIDE,
                process=lambda d, data: data + b"*" if d == "c2s" else data,
            )

        service = MiddleboxService(network.host("mbox"), make_config)

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(rng=rng.fork(source.encode()), credential=pki.credential("server"))
            )
            driver = EngineDriver(engine, socket)
            driver.on_event = (
                lambda event: driver.send_application_data(b"to-" + event.data)
                if isinstance(event, ApplicationData)
                else None
            )
            driver.start()

        network.host("server").listen(443, accept)

        received: dict[str, list[bytes]] = {}
        drivers = {}
        # Open all three connections before running the simulator at all, so
        # every handshake interleaves with the others.
        for client in ("alice", "bob", "carol"):
            received[client] = []

            def on_event(event, client=client):
                if isinstance(event, SessionEstablished):
                    drivers[client].send_application_data(client.encode())
                elif isinstance(event, ApplicationData):
                    received[client].append(event.data)

            _, driver = open_mbtls(
                network.host(client),
                "server",
                MbTLSEndpointConfig(
                    tls=TLSConfig(
                        rng=rng.fork(client.encode()),
                        trust_store=pki.trust,
                        server_name="server",
                    ),
                    middlebox_trust_store=pki.trust,
                ),
                on_event=on_event,
            )
            drivers[client] = driver

        network.sim.run()
        assert received == {
            "alice": [b"to-alice*"],
            "bob": [b"to-bob*"],
            "carol": [b"to-carol*"],
        }
        # One independent middlebox engine per connection, all joined.
        assert len(service.drivers) == 3
        assert all(driver.engine.joined for driver in service.drivers)

    def test_sessions_have_independent_keys(self, rng, pki):
        network = Network()
        for name in ("alice", "bob", "mbox", "server"):
            network.add_host(name)
        network.add_link("alice", "mbox", 0.003)
        network.add_link("bob", "mbox", 0.004)
        network.add_link("mbox", "server", 0.005)
        MiddleboxService(
            network.host("mbox"),
            lambda: MiddleboxConfig(
                name="mbox",
                tls=TLSConfig(rng=rng.fork(b"mb"), credential=pki.credential("mbox")),
                role=MiddleboxRole.CLIENT_SIDE,
            ),
        )

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(rng=rng.fork(b"s" + source.encode()),
                          credential=pki.credential("server"))
            )
            EngineDriver(engine, socket).start()

        network.host("server").listen(443, accept)

        engines = {}
        for client in ("alice", "bob"):
            engine, _ = open_mbtls(
                network.host(client),
                "server",
                MbTLSEndpointConfig(
                    tls=TLSConfig(
                        rng=rng.fork(client.encode()),
                        trust_store=pki.trust,
                        server_name="server",
                    ),
                    middlebox_trust_store=pki.trust,
                ),
            )
            engines[client] = engine
        network.sim.run()
        assert engines["alice"].established and engines["bob"].established
        assert (
            engines["alice"].primary.master_secret
            != engines["bob"].primary.master_secret
        )
        assert engines["alice"]._data_write.key != engines["bob"]._data_write.key
