"""AEAD process-pool coverage: pooled output must be byte-identical to
serial, tag failures must propagate with the all-or-nothing contract
intact, and the record layer must fall back to serial whenever the pool
is absent or the batch is too small to pay for IPC."""

import pytest

from repro.crypto import pool as aead_pool
from repro.crypto.pool import _MIN_BYTES, _MIN_RECORDS, AeadPool
from repro.errors import CryptoError, IntegrityError
from repro.tls.ciphersuites import (
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 as AES_SUITE,
    TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256 as CHACHA_SUITE,
)
from repro.tls.record_layer import ConnectionState
from repro.wire.records import ContentType


@pytest.fixture
def pool():
    pool = AeadPool(workers=2)
    yield pool
    pool.close()


@pytest.fixture(autouse=True)
def _reset_module_pool():
    yield
    aead_pool.reset()


def _items(rng, count=10, size=16384):
    return [
        (rng.random_bytes(12), rng.random_bytes(size), rng.random_bytes(13))
        for _ in range(count)
    ]


@pytest.mark.parametrize("suite", [AES_SUITE, CHACHA_SUITE],
                         ids=["aes128", "chacha"])
class TestPoolEqualsSerial:
    def test_seal_many_byte_identical(self, suite, pool, rng):
        key = rng.random_bytes(suite.key_length)
        items = _items(rng)
        assert pool.seal_many(suite, key, items) == suite.new_aead(
            key
        ).seal_many(items)

    def test_open_many_byte_identical(self, suite, pool, rng):
        key = rng.random_bytes(suite.key_length)
        aead = suite.new_aead(key)
        items = _items(rng)
        sealed = aead.seal_many(items)
        wire = [(n, c, a) for (n, _, a), c in zip(items, sealed)]
        assert pool.open_many(suite, key, wire) == [p for _, p, _ in items]

    def test_memoryview_items_accepted(self, suite, pool, rng):
        # The zero-copy receive path hands the pool memoryview payloads;
        # they must be normalized before crossing the pickle boundary.
        key = rng.random_bytes(suite.key_length)
        items = _items(rng, count=9)
        views = [(n, memoryview(d), memoryview(a)) for n, d, a in items]
        assert pool.seal_many(suite, key, views) == suite.new_aead(
            key
        ).seal_many(items)


class TestFailurePropagation:
    def test_tampered_batch_raises_integrity_error(self, pool, rng):
        key = rng.random_bytes(AES_SUITE.key_length)
        aead = AES_SUITE.new_aead(key)
        items = _items(rng, count=9)
        sealed = aead.seal_many(items)
        wire = [(n, c, a) for (n, _, a), c in zip(items, sealed)]
        bad = bytearray(wire[5][1])
        bad[0] ^= 0x01
        wire[5] = (wire[5][0], bytes(bad), wire[5][2])
        with pytest.raises(IntegrityError):
            pool.open_many(AES_SUITE, key, wire)

    def test_needs_at_least_two_workers(self):
        with pytest.raises(CryptoError):
            AeadPool(workers=1)


class TestEligibility:
    def test_small_batches_stay_serial(self, pool, rng):
        too_few = _items(rng, count=_MIN_RECORDS - 1, size=16384)
        assert not pool.eligible(too_few)
        per = _MIN_BYTES // _MIN_RECORDS
        too_small = _items(rng, count=_MIN_RECORDS, size=per - 64)
        assert not pool.eligible(too_small)
        assert pool.eligible(_items(rng, count=_MIN_RECORDS, size=per))

    def test_configure_and_reset(self):
        assert aead_pool.active() is None
        assert aead_pool.configure(4) is aead_pool.active()
        assert aead_pool.active().workers == 4
        assert aead_pool.configure(0) is None
        assert aead_pool.active() is None


class TestTeardown:
    def test_close_joins_workers_gracefully(self, rng):
        """close() lets the workers drain and exit (exitcode 0) instead
        of SIGTERMing them mid-task, and is idempotent."""
        pool = AeadPool(workers=2)
        key = rng.random_bytes(AES_SUITE.key_length)
        pool.seal_many(AES_SUITE, key, _items(rng, count=4, size=256))
        workers = list(pool._pool._pool)
        pool.close()
        assert pool._pool is None
        assert all(worker.exitcode == 0 for worker in workers)
        pool.close()  # second close is a no-op, not an error

    def test_repeated_reconfigure_does_not_leak_processes(self, rng):
        """configure/reset cycles must reap every worker they spawn."""
        import multiprocessing

        baseline = len(multiprocessing.active_children())
        key = rng.random_bytes(AES_SUITE.key_length)
        for _ in range(5):
            pool = aead_pool.configure(2)
            pool.seal_many(AES_SUITE, key, _items(rng, count=4, size=256))
            aead_pool.reset()
        # active_children() reaps exited processes; a leak shows up as a
        # monotonically growing set of live workers.
        assert len(multiprocessing.active_children()) <= baseline

    def test_reset_never_raises(self):
        """reset() runs from atexit, where raising would mask the real
        interpreter shutdown; it must swallow teardown failures."""
        pool = aead_pool.configure(2)

        class _ExplodingPool:
            def close(self):
                raise RuntimeError("teardown race")

            def terminate(self):
                raise RuntimeError("already gone")

        pool._pool = _ExplodingPool()
        aead_pool.reset()  # must not raise
        assert aead_pool.active() is None


class TestRecordLayerDispatch:
    def _flight(self, rng, records=10, size=16384):
        return [
            (ContentType.APPLICATION_DATA, rng.random_bytes(size))
            for _ in range(records)
        ]

    @pytest.mark.parametrize("suite", [AES_SUITE, CHACHA_SUITE],
                             ids=["aes128", "chacha"])
    def test_pooled_protect_many_is_byte_identical(self, suite, rng):
        key = rng.random_bytes(suite.key_length)
        fixed_iv = rng.random_bytes(suite.fixed_iv_length)
        flight = self._flight(rng)

        serial_state = ConnectionState(suite, key, fixed_iv)
        serial = [r.encode() for r in serial_state.protect_many(flight)]

        aead_pool.configure(2)
        pooled_state = ConnectionState(suite, key, fixed_iv)
        pooled = [r.encode() for r in pooled_state.protect_many(flight)]

        assert pooled == serial
        assert pooled_state.sequence == serial_state.sequence

    def test_pooled_unprotect_many_roundtrip(self, rng):
        suite = AES_SUITE
        key = rng.random_bytes(suite.key_length)
        fixed_iv = rng.random_bytes(suite.fixed_iv_length)
        flight = self._flight(rng)
        sealed = ConnectionState(suite, key, fixed_iv).protect_many(flight)

        aead_pool.configure(2)
        reader = ConnectionState(suite, key, fixed_iv)
        plaintexts = reader.unprotect_many(sealed)
        assert plaintexts == [payload for _, payload in flight]

    def test_tamper_consumes_no_sequence_under_pool(self, rng):
        suite = AES_SUITE
        key = rng.random_bytes(suite.key_length)
        fixed_iv = rng.random_bytes(suite.fixed_iv_length)
        flight = self._flight(rng)
        sealed = ConnectionState(suite, key, fixed_iv).protect_many(flight)
        tampered = bytearray(sealed[3].payload)
        tampered[-1] ^= 0x80
        sealed[3] = type(sealed[3])(sealed[3].content_type, bytes(tampered))

        aead_pool.configure(2)
        reader = ConnectionState(suite, key, fixed_iv)
        with pytest.raises(IntegrityError):
            reader.unprotect_many(sealed)
        # All-or-nothing: the failed batch consumed no sequence numbers,
        # so the per-record replay still opens the valid prefix.
        assert reader.sequence == 0
        assert reader.unprotect(sealed[0]) == flight[0][1]
