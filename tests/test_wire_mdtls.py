"""Codec round-trips and verification for the mdTLS wire structures."""

import pytest

from repro.crypto.rsa import generate_rsa_key
from repro.errors import CertificateError, DecodeError
from repro.wire.handshake import Handshake, HandshakeBuffer, HandshakeType
from repro.wire.mdtls import (
    DelegationCertificate,
    DelegationCertificateExtension,
    HopKeyDelivery,
    ProxySignature,
)


@pytest.fixture(scope="module")
def warrant_world(pki):
    """A delegator credential, a middlebox key, and a signed warrant."""
    delegator = pki.credential("client.example")
    mbox = pki.credential("cache-1")
    warrant = DelegationCertificate.issue(
        delegator=delegator.certificate.subject,
        delegator_key=delegator.private_key,
        delegator_chain=delegator.encoded_chain(),
        middlebox="cache-1",
        middlebox_key=mbox.private_key.public_key,
        permissions="read-write",
        not_before=0.0,
        not_after=1000.0,
    )
    return delegator, mbox, warrant


class TestDelegationCertificate:
    def test_roundtrip(self, warrant_world):
        _, _, warrant = warrant_world
        assert DelegationCertificate.decode(warrant.encode()) == warrant

    def test_verify_accepts_honest_warrant(self, pki, warrant_world):
        _, mbox, warrant = warrant_world
        leaf = warrant.verify(
            pki.trust,
            now=500.0,
            middlebox="cache-1",
            middlebox_key=mbox.private_key.public_key,
        )
        assert leaf.subject == "client.example"

    def test_verify_rejects_expired_warrant(self, pki, warrant_world):
        _, _, warrant = warrant_world
        with pytest.raises(CertificateError) as excinfo:
            warrant.verify(pki.trust, now=2000.0)
        assert excinfo.value.alert == "certificate_expired"

    def test_verify_rejects_wrong_middlebox_key(self, pki, rng, warrant_world):
        _, _, warrant = warrant_world
        other = generate_rsa_key(512, rng).public_key
        with pytest.raises(CertificateError, match="different"):
            warrant.verify(pki.trust, now=500.0, middlebox_key=other)

    def test_verify_rejects_wrong_middlebox_name(self, pki, warrant_world):
        _, _, warrant = warrant_world
        with pytest.raises(CertificateError, match="names middlebox"):
            warrant.verify(pki.trust, now=500.0, middlebox="cache-2")

    def test_verify_rejects_tampered_tbs(self, pki, warrant_world):
        """Extending the validity window invalidates the signature."""
        _, _, warrant = warrant_world
        forged = DelegationCertificate(
            delegator=warrant.delegator,
            middlebox=warrant.middlebox,
            permissions=warrant.permissions,
            not_before=warrant.not_before,
            not_after=warrant.not_after + 10_000.0,
            middlebox_key=warrant.middlebox_key,
            delegator_chain=warrant.delegator_chain,
            signature=warrant.signature,
        )
        with pytest.raises(CertificateError, match="bad delegation signature"):
            forged.verify(pki.trust, now=500.0)

    def test_verify_rejects_untrusted_delegator(self, rng, pki, warrant_world):
        """A warrant chained to a self-signed delegator does not anchor."""
        from repro.pki.authority import CertificateAuthority

        rogue = CertificateAuthority("rogue", rng, key_bits=512)
        cred = rogue.issue_credential("mallory", key_bits=512)
        _, mbox, _ = warrant_world
        warrant = DelegationCertificate.issue(
            delegator="mallory",
            delegator_key=cred.private_key,
            delegator_chain=cred.encoded_chain(),
            middlebox="cache-1",
            middlebox_key=mbox.private_key.public_key,
        )
        with pytest.raises(CertificateError) as excinfo:
            warrant.verify(pki.trust, now=500.0)
        assert excinfo.value.alert == "unknown_ca"

    def test_inverted_window_rejected_at_decode(self, warrant_world):
        _, _, warrant = warrant_world
        inverted = DelegationCertificate(
            delegator=warrant.delegator,
            middlebox=warrant.middlebox,
            permissions=warrant.permissions,
            not_before=1000.0,
            not_after=0.0,
            middlebox_key=warrant.middlebox_key,
            delegator_chain=warrant.delegator_chain,
            signature=warrant.signature,
        )
        with pytest.raises(DecodeError, match="inverted"):
            DelegationCertificate.decode(inverted.encode())


class TestDelegationCertificateExtension:
    def test_roundtrip(self, warrant_world):
        _, _, warrant = warrant_world
        extension = DelegationCertificateExtension((warrant, warrant)).to_extension()
        decoded = DelegationCertificateExtension.from_extension(extension)
        assert decoded.warrants == (warrant, warrant)

    def test_empty_batch_roundtrip(self):
        extension = DelegationCertificateExtension().to_extension()
        assert DelegationCertificateExtension.from_extension(extension).warrants == ()

    def test_trailing_garbage_rejected(self, warrant_world):
        _, _, warrant = warrant_world
        extension = DelegationCertificateExtension((warrant,)).to_extension()
        from repro.wire.extensions import Extension

        with pytest.raises(DecodeError):
            DelegationCertificateExtension.from_extension(
                Extension(extension.extension_type, extension.data + b"\x00")
            )


class TestProxySignature:
    def test_roundtrip(self):
        message = ProxySignature(middlebox="cache-1", direction=1, signature=b"s" * 128)
        assert ProxySignature.decode_body(message.encode_body()) == message

    def test_unknown_direction_rejected(self):
        message = ProxySignature(middlebox="cache-1", direction=1, signature=b"sig")
        body = bytearray(message.encode_body())
        body[2 + len("cache-1")] = 7  # the direction byte after the name vector
        with pytest.raises(DecodeError, match="direction"):
            ProxySignature.decode_body(bytes(body))

    def test_signed_payload_is_domain_separated(self):
        transcript = b"\xab" * 32
        c2s = ProxySignature.signed_payload(0, transcript)
        s2c = ProxySignature.signed_payload(1, transcript)
        assert c2s != s2c
        assert transcript in c2s
        assert c2s.startswith(b"mdtls proxy signature")

    def test_handshake_framing_roundtrip(self):
        """The new HandshakeType survives HandshakeBuffer reassembly."""
        message = ProxySignature(middlebox="m", direction=0, signature=b"x" * 64)
        framed = Handshake(
            msg_type=HandshakeType.MDTLS_PROXY_SIGNATURE,
            body=message.encode_body(),
        ).encode()
        buffer = HandshakeBuffer()
        buffer.feed(framed[:5])
        assert buffer.pop_messages() == []
        buffer.feed(framed[5:])
        (reassembled,) = buffer.pop_messages()
        assert reassembled.msg_type == HandshakeType.MDTLS_PROXY_SIGNATURE
        assert ProxySignature.decode_body(reassembled.body) == message


class TestHopKeyDelivery:
    def test_roundtrip(self):
        message = HopKeyDelivery(middlebox="cache-1", encrypted_secrets=b"c" * 128)
        assert HopKeyDelivery.decode_body(message.encode_body()) == message

    def test_handshake_framing_roundtrip(self):
        message = HopKeyDelivery(middlebox="m", encrypted_secrets=b"e" * 96)
        framed = Handshake(
            msg_type=HandshakeType.MDTLS_KEY_DELIVERY,
            body=message.encode_body(),
        ).encode()
        buffer = HandshakeBuffer()
        buffer.feed(framed)
        (reassembled,) = buffer.pop_messages()
        assert reassembled.msg_type == HandshakeType.MDTLS_KEY_DELIVERY
        assert HopKeyDelivery.decode_body(reassembled.body) == message

    def test_seal_open_under_warranted_key(self, warrant_world):
        """The two 32-byte hop secrets fit a 1024-bit RSA encryption."""
        from repro.crypto.drbg import HmacDrbg

        _, mbox, warrant = warrant_world
        secrets = b"A" * 32 + b"B" * 32
        sealed = warrant.middlebox_key.encrypt(secrets, HmacDrbg(b"seal"))
        message = HopKeyDelivery(middlebox="cache-1", encrypted_secrets=sealed)
        decoded = HopKeyDelivery.decode_body(message.encode_body())
        assert mbox.private_key.decrypt(decoded.encrypted_secrets) == secrets
