"""Preconfigured middleboxes: the client dials the middlebox directly and
lists it in the MiddleboxSupport extension (§3.4, "Client-Side
Middleboxes", pre-configured case). The middlebox learns the next hop from
the extension list and the SNI."""


from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    SessionEstablished,
)
from repro.core.drivers import MiddleboxService, open_mbtls
from repro.netsim.driver import EngineDriver
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSServerEngine
from repro.tls.events import ApplicationData


def build_world(rng, pki, hosts, links):
    network = Network()
    for host in hosts:
        network.add_host(host)
    for a, b, latency in links:
        network.add_link(a, b, latency)

    def accept(socket, source):
        engine = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server"))
        )
        driver = EngineDriver(engine, socket)
        driver.on_event = (
            lambda event: driver.send_application_data(b"R:" + event.data)
            if isinstance(event, ApplicationData)
            else None
        )
        driver.start()

    network.host("server").listen(443, accept)
    return network


def run_client(network, rng, pki, dial_to, preconfigured, received, events):
    def on_event(event):
        events.append(event)
        if isinstance(event, SessionEstablished):
            driver.send_application_data(b"PING")
        elif isinstance(event, ApplicationData):
            received.append(event.data)

    config = MbTLSEndpointConfig(
        tls=TLSConfig(
            rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server"
        ),
        middlebox_trust_store=pki.trust,
        preconfigured_middleboxes=preconfigured,
    )
    engine, driver = open_mbtls(network.host("client"), dial_to, config,
                                on_event=on_event)
    network.sim.run()
    return engine


class TestPreconfigured:
    def test_directly_addressed_middlebox(self, rng, pki):
        """Client connects TO the middlebox; SNI names the real server."""
        network = build_world(
            rng, pki,
            hosts=("client", "mb-host", "server"),
            links=[("client", "mb-host", 0.005), ("mb-host", "server", 0.01)],
        )
        service = MiddleboxService(
            network.host("mb-host"),
            lambda: MiddleboxConfig(
                name="mb-host",
                tls=TLSConfig(rng=rng.fork(b"mb"), credential=pki.credential("mb-host")),
                role=MiddleboxRole.CLIENT_SIDE,
                process=lambda d, data: data + b"!" if d == "c2s" else data,
            ),
            intercept=False,
            listen=True,
        )
        received, events = [], []
        run_client(network, rng, pki, dial_to="mb-host",
                   preconfigured=("mb-host",), received=received, events=events)
        assert received == [b"R:PING!"]
        engine = service.drivers[0].engine
        assert engine.mode == "client-side"
        # The middlebox learned the onward hop from the SNI.
        assert engine.dial_target == ("server", 443)

    def test_chain_of_two_preconfigured(self, rng, pki):
        """Each listed middlebox dials the next entry; the last dials SNI."""
        network = build_world(
            rng, pki,
            hosts=("client", "mb-a", "mb-b", "server"),
            links=[
                ("client", "mb-a", 0.004),
                ("mb-a", "mb-b", 0.004),
                ("mb-b", "server", 0.004),
            ],
        )
        for name, tag in (("mb-a", b"A"), ("mb-b", b"B")):
            MiddleboxService(
                network.host(name),
                lambda name=name, tag=tag: MiddleboxConfig(
                    name=name,
                    tls=TLSConfig(
                        rng=rng.fork(name.encode()), credential=pki.credential(name)
                    ),
                    role=MiddleboxRole.CLIENT_SIDE,
                    process=lambda d, data, tag=tag: data + tag if d == "c2s" else data,
                ),
                intercept=False,
                listen=True,
            )
        received, events = [], []
        run_client(network, rng, pki, dial_to="mb-a",
                   preconfigured=("mb-a", "mb-b"), received=received, events=events)
        assert received == [b"R:PINGAB"]
        established = [e for e in events if isinstance(e, SessionEstablished)][0]
        assert [m.name for m in established.middleboxes] == ["mb-a", "mb-b"]

    def test_preconfigured_plus_discovered(self, rng, pki):
        """A preconfigured first hop coexists with an interceptor further on."""
        network = build_world(
            rng, pki,
            hosts=("client", "pre", "disc", "server"),
            links=[
                ("client", "pre", 0.004),
                ("pre", "disc", 0.004),
                ("disc", "server", 0.004),
            ],
        )
        MiddleboxService(
            network.host("pre"),
            lambda: MiddleboxConfig(
                name="pre",
                tls=TLSConfig(rng=rng.fork(b"pre"), credential=pki.credential("pre")),
                role=MiddleboxRole.CLIENT_SIDE,
                process=lambda d, data: data + b"P" if d == "c2s" else data,
            ),
            intercept=False,
            listen=True,
        )
        MiddleboxService(
            network.host("disc"),
            lambda: MiddleboxConfig(
                name="disc",
                tls=TLSConfig(rng=rng.fork(b"disc"), credential=pki.credential("disc")),
                role=MiddleboxRole.CLIENT_SIDE,
                process=lambda d, data: data + b"D" if d == "c2s" else data,
            ),
        )  # on-path interceptor
        received, events = [], []
        run_client(network, rng, pki, dial_to="pre",
                   preconfigured=("pre",), received=received, events=events)
        assert received == [b"R:PINGPD"]
        established = [e for e in events if isinstance(e, SessionEstablished)][0]
        assert [m.name for m in established.middleboxes] == ["pre", "disc"]
