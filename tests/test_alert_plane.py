"""The alert plane: wire round-trips and hop-by-hop fatal propagation.

Two layers. The wire layer: :class:`repro.wire.alerts.Alert` must encode
and decode every description, at both levels, with and without the
origin-attribution extension. The session layer: a tampered record on an
interior hop of a two-middlebox mbTLS path must tear down *every* party —
client, both middleboxes, server — each attributing the abort to the hop
that detected the damage, with nobody left half-open.
"""

from __future__ import annotations

import pytest

from helpers import MbTLSScenario, identity
from repro.core.config import MiddleboxRole
from repro.tls.events import ConnectionClosed
from repro.errors import DecodeError, SessionAborted
from repro.netsim.adversary import GlobalAdversary, MutatingTap
from repro.wire.alerts import Alert, AlertDescription, AlertLevel


# ---------------------------------------------------------------------------
# Wire layer
# ---------------------------------------------------------------------------


class TestAlertWire:
    @pytest.mark.parametrize("description", list(AlertDescription))
    @pytest.mark.parametrize("level", list(AlertLevel))
    def test_round_trip_every_description(self, level, description):
        alert = Alert(level=level, description=description)
        assert Alert.decode(alert.encode()) == alert
        assert alert.encode() == bytes([level, description])  # classic form

    @pytest.mark.parametrize("description", list(AlertDescription))
    def test_round_trip_with_origin(self, description):
        alert = Alert.fatal(description, origin="mb1")
        decoded = Alert.decode(alert.encode())
        assert decoded == alert
        assert decoded.origin == "mb1"
        assert decoded.is_fatal

    def test_classic_two_byte_form_decodes_with_empty_origin(self):
        decoded = Alert.decode(b"\x02\x14")
        assert decoded.level is AlertLevel.FATAL
        assert decoded.description is AlertDescription.BAD_RECORD_MAC
        assert decoded.origin == ""

    def test_from_name_round_trips_every_description(self):
        for description in AlertDescription:
            assert AlertDescription.from_name(description.name.lower()) is description
        assert (
            AlertDescription.from_name("no_such_alert")
            is AlertDescription.INTERNAL_ERROR
        )

    def test_malformed_alerts_raise_decode_error(self):
        for blob in (b"", b"\x02", b"\x09\x14", b"\x02\xfe", b"\x02\x14\x05mb"):
            with pytest.raises(DecodeError):
                Alert.decode(blob)


# ---------------------------------------------------------------------------
# Session layer
# ---------------------------------------------------------------------------


class FlipCiphertextByte(MutatingTap):
    """One-shot: corrupt the first data record a given hop sends."""

    def __init__(self, sender: str):
        super().__init__(mutate=lambda d: d)
        self.sender = sender

    def process(self, sender, data, stream):
        if self.mutations >= 1 or sender.name != self.sender or len(data) < 10:
            return data
        if data[:1] != b"\x17":  # only application-data records
            return data
        self.mutations += 1
        index = len(data) // 2  # inside the ciphertext, not the header
        return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1 :]


class TestHopByHopTeardown:
    def test_bad_record_mac_mid_path_tears_down_every_hop(self, pki, rng):
        """Tamper the mb0->mb1 segment of an established two-middlebox
        session: mb1's per-hop MAC detects it, and under
        ``tamper_policy="abort"`` the resulting fatal ``bad_record_mac``
        sweeps the whole path in both directions, attributed to mb1."""
        abort_kwargs = {"tamper_policy": "abort"}
        scenario = MbTLSScenario(
            pki,
            rng,
            mbox_specs=[
                ("mb0", MiddleboxRole.CLIENT_SIDE, identity, {}),
                ("mb1", MiddleboxRole.CLIENT_SIDE, identity, {}),
            ],
            client_config_kwargs=abort_kwargs,
            server_config_kwargs=abort_kwargs,
            mbox_config_kwargs=abort_kwargs,
        )
        adversary = GlobalAdversary(scenario.network)
        scenario.run_client(b"PING")
        assert scenario.server_received == [b"PING"]  # established + clean

        tap = FlipCiphertextByte(sender="mb0")
        adversary.add_tap_between("mb0", "mb1", tap)
        scenario.client_driver.send_application_data(b"doomed")
        scenario.network.sim.run()
        assert tap.mutations == 1

        # The detecting hop attributes itself...
        mb1 = scenario.middlebox_engine(1)
        assert isinstance(mb1.abort, SessionAborted)
        assert mb1.abort.origin == "mb1"
        assert mb1.abort.alert == "bad_record_mac"

        # ...and the abort reaches both endpoints with attribution intact.
        client = scenario.client_engine
        assert isinstance(client.abort, SessionAborted)
        assert client.abort.origin == "mb1"
        assert client.abort.alert == "bad_record_mac"
        closures = [e for e in scenario.events if isinstance(e, ConnectionClosed)]
        assert any(
            e.alert == "bad_record_mac" and e.origin == "mb1" for e in closures
        )
        server_closures = [
            e for e in scenario.server_events if isinstance(e, ConnectionClosed)
        ]
        assert any(
            e.alert == "bad_record_mac" and e.origin == "mb1"
            for e in server_closures
        )

        # Nobody is left half-open: the alert swept every hop.
        assert client.closed
        assert scenario.middlebox_engine(0).closed
        assert mb1.closed
        assert scenario.middlebox_engine(0).abort is not None
        assert scenario.middlebox_engine(0).abort.origin == "mb1"

    def test_default_policy_drops_instead_of_aborting(self, pki, rng):
        """Without ``tamper_policy="abort"`` the same tampering is absorbed:
        the record is dropped and the session survives (the pinned P2/P4
        default) — the abort path is strictly opt-in."""
        scenario = MbTLSScenario(
            pki,
            rng,
            mbox_specs=[
                ("mb0", MiddleboxRole.CLIENT_SIDE, identity, {}),
                ("mb1", MiddleboxRole.CLIENT_SIDE, identity, {}),
            ],
        )
        adversary = GlobalAdversary(scenario.network)
        scenario.run_client(b"PING")

        # Tamper the s2c direction: mb1's sends on the mb0<->mb1 segment.
        tap = FlipCiphertextByte(sender="mb1")
        adversary.add_tap_between("mb0", "mb1", tap)
        scenario.client_driver.send_application_data(b"swallowed")
        scenario.network.sim.run()
        assert tap.mutations == 1

        mb0 = scenario.middlebox_engine(0)
        assert mb0.records_dropped >= 1  # detected, absorbed
        assert mb0.abort is None
        assert scenario.middlebox_engine(1).abort is None
        assert not scenario.client_engine.closed
        # The untampered direction keeps flowing.
        scenario.client_driver.send_application_data(b"alive")
        scenario.network.sim.run()
        assert scenario.server_received[-1] == b"alive"
