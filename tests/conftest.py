"""Shared fixtures: deterministic randomness, a session PKI, pump helpers."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import Pki
from repro.crypto.drbg import HmacDrbg
from repro.io import pump as io_pump
from repro.pki.authority import CertificateAuthority
from repro.pki.store import TrustStore


@pytest.fixture
def rng(request) -> HmacDrbg:
    """A fresh DRBG deterministically seeded per test."""
    return HmacDrbg(request.node.nodeid.encode())


@pytest.fixture(scope="session")
def session_rng() -> HmacDrbg:
    return HmacDrbg(b"session")


@pytest.fixture(scope="session")
def pki(session_rng) -> Pki:
    """Session-wide PKI so RSA key generation is paid once."""
    return Pki(rng=session_rng.fork(b"pki"))


@pytest.fixture(scope="session")
def ca(pki) -> CertificateAuthority:
    return pki.ca


@pytest.fixture(scope="session")
def trust(pki) -> TrustStore:
    return pki.trust


def pump_engines(client, server, rounds: int = 30) -> tuple[list, list]:
    """Drive two directly-connected sans-IO engines to quiescence.

    Thin alias over :func:`repro.io.pump`, the one pump utility in the tree.
    Returns (client_events, server_events).
    """
    return io_pump(client, server, rounds)


@pytest.fixture
def pump():
    return pump_engines
