"""Shared fixtures: deterministic randomness, a session PKI, pump helpers."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import Pki
from repro.crypto.drbg import HmacDrbg
from repro.pki.authority import CertificateAuthority
from repro.pki.store import TrustStore


@pytest.fixture
def rng(request) -> HmacDrbg:
    """A fresh DRBG deterministically seeded per test."""
    return HmacDrbg(request.node.nodeid.encode())


@pytest.fixture(scope="session")
def session_rng() -> HmacDrbg:
    return HmacDrbg(b"session")


@pytest.fixture(scope="session")
def pki(session_rng) -> Pki:
    """Session-wide PKI so RSA key generation is paid once."""
    return Pki(rng=session_rng.fork(b"pki"))


@pytest.fixture(scope="session")
def ca(pki) -> CertificateAuthority:
    return pki.ca


@pytest.fixture(scope="session")
def trust(pki) -> TrustStore:
    return pki.trust


def pump_engines(client, server, rounds: int = 30) -> tuple[list, list]:
    """Drive two directly-connected sans-IO engines to quiescence.

    Returns (client_events, server_events).
    """
    client_events: list = []
    server_events: list = []
    for _ in range(rounds):
        progressed = False
        data = client.data_to_send()
        if data:
            server_events += server.receive_bytes(data)
            progressed = True
        data = server.data_to_send()
        if data:
            client_events += client.receive_bytes(data)
            progressed = True
        if not progressed:
            break
    return client_events, server_events


@pytest.fixture
def pump():
    return pump_engines
