"""mbTLS end-to-end: discovery, announcements, legacy interop, ordering,
approval policy, attestation — the protocol of §3.4."""


from helpers import MbTLSScenario, identity, tagger
from repro.core.config import MiddleboxRejected, MiddleboxRole, SessionEstablished
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode, Platform
from repro.tls.events import MiddleboxJoined


class TestClientSideDiscovery:
    def test_discovered_middlebox_joins_and_processes(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, tagger(b"+P"), {})],
            server_kind="tls",
        ).run_client(b"PING")
        assert scenario.client_received == [b"REPLY:PING+P"]
        event = scenario.established_event
        assert [m.name for m in event.middleboxes] == ["proxy"]
        assert scenario.middlebox_engine().joined

    def test_middlebox_joined_event_carries_certificate(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
        ).run_client()
        joined = [e for e in scenario.events if isinstance(e, MiddleboxJoined)]
        assert len(joined) == 1
        assert joined[0].certificate.subject == "proxy"

    def test_no_middlebox_plain_session(self, rng, pki):
        scenario = MbTLSScenario(pki, rng, mbox_specs=[], server_kind="tls")
        scenario.run_client(b"PING")
        assert scenario.client_received == [b"REPLY:PING"]
        assert scenario.established_event.middleboxes == ()

    def test_two_client_side_in_path_order(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("near-client", MiddleboxRole.CLIENT_SIDE, tagger(b"+A"), {}),
                ("near-server", MiddleboxRole.CLIENT_SIDE, tagger(b"+B"), {}),
            ],
            server_kind="tls",
        ).run_client(b"X")
        # Data passes near-client first: tags apply in path order.
        assert scenario.client_received == [b"REPLY:X+A+B"]
        assert [m.name for m in scenario.established_event.middleboxes] == [
            "near-client",
            "near-server",
        ]

    def test_distinct_subchannels(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("one", MiddleboxRole.CLIENT_SIDE, identity, {}),
                ("two", MiddleboxRole.CLIENT_SIDE, identity, {}),
            ],
            server_kind="tls",
        ).run_client()
        subchannels = [m.subchannel_id for m in scenario.established_event.middleboxes]
        assert len(set(subchannels)) == 2


class TestServerSideAnnouncement:
    def test_legacy_client_with_server_side_middlebox(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("edge", MiddleboxRole.SERVER_SIDE, tagger(b"+E", "s2c"), {})],
            client_kind="tls",
            server_kind="mbtls",
        ).run_client(b"PING")
        assert scenario.client_received == [b"REPLY:PING+E"]
        server_established = [
            e for e in scenario.server_events if isinstance(e, SessionEstablished)
        ]
        assert [m.name for m in server_established[0].middleboxes] == ["edge"]

    def test_two_server_side_in_path_order(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("s-near-client", MiddleboxRole.SERVER_SIDE, tagger(b"+1"), {}),
                ("s-near-server", MiddleboxRole.SERVER_SIDE, tagger(b"+2"), {}),
            ],
            client_kind="tls",
            server_kind="mbtls",
        ).run_client(b"X")
        assert scenario.server_received == [b"X+1+2"]
        established = [
            e for e in scenario.server_events if isinstance(e, SessionEstablished)
        ][0]
        assert [m.name for m in established.middleboxes] == [
            "s-near-client",
            "s-near-server",
        ]

    def test_server_side_rejected_when_announcements_disabled(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("edge", MiddleboxRole.SERVER_SIDE, tagger(b"+E"), {})],
            client_kind="tls",
            server_kind="mbtls",
            server_config_kwargs={"accept_announcements": False},
        ).run_client(b"PING")
        # Middlebox gives up, relays; data is untouched.
        assert scenario.client_received == [b"REPLY:PING"]
        assert scenario.middlebox_engine().gave_up

    def test_give_up_caches_non_mbtls_server(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("edge", MiddleboxRole.SERVER_SIDE, identity, {})],
            client_kind="tls",
            server_kind="tls",
        ).run_client(b"PING")
        assert scenario.client_received == [b"REPLY:PING"]
        engine = scenario.middlebox_engine()
        assert engine.gave_up
        assert "server" in engine.config.non_mbtls_servers


class TestBothSides:
    def test_full_chain_two_plus_two(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("c1", MiddleboxRole.CLIENT_SIDE, tagger(b"A"), {}),
                ("c2", MiddleboxRole.CLIENT_SIDE, tagger(b"B"), {}),
                ("s1", MiddleboxRole.SERVER_SIDE, tagger(b"C"), {}),
                ("s2", MiddleboxRole.SERVER_SIDE, tagger(b"D"), {}),
            ],
            server_kind="mbtls",
        ).run_client(b"X")
        assert scenario.server_received == [b"XABCD"]
        assert scenario.client_received == [b"REPLY:XABCD"]

    def test_endpoint_isolation(self, rng, pki):
        """Endpoints only see their own middleboxes (§4.2)."""
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("client-mb", MiddleboxRole.CLIENT_SIDE, identity, {}),
                ("server-mb", MiddleboxRole.SERVER_SIDE, identity, {}),
            ],
            server_kind="mbtls",
        ).run_client()
        client_view = [m.name for m in scenario.established_event.middleboxes]
        server_view = [
            m.name
            for e in scenario.server_events
            if isinstance(e, SessionEstablished)
            for m in e.middleboxes
        ]
        assert client_view == ["client-mb"]
        assert server_view == ["server-mb"]


class TestApprovalPolicy:
    def test_policy_rejection_downgrades_to_relay(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, tagger(b"+P"), {})],
            server_kind="tls",
            client_config_kwargs={"approve_middlebox": lambda info: False},
        ).run_client(b"PING")
        # Session still works; the middlebox relays without keys.
        assert scenario.client_received == [b"REPLY:PING"]
        assert any(isinstance(e, MiddleboxRejected) for e in scenario.events)
        assert scenario.established_event.middleboxes == ()
        assert not scenario.middlebox_engine().joined

    def test_policy_sees_certificate_name(self, rng, pki):
        seen = []

        def policy(info):
            seen.append(info.name)
            return True

        MbTLSScenario(
            pki, rng,
            mbox_specs=[("trusted-proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
            client_config_kwargs={"approve_middlebox": policy},
        ).run_client()
        assert seen == ["trusted-proxy"]

    def test_untrusted_middlebox_certificate_rejected(self, rng, pki, session_rng):
        from repro.pki.authority import CertificateAuthority

        rogue = CertificateAuthority("rogue", session_rng.fork(b"rogue-mb"), key_bits=1024)
        rogue_cred = rogue.issue_credential("proxy", rng=session_rng.fork(b"rk"))

        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, tagger(b"+P"), {})],
            server_kind="tls",
        )
        # Replace the middlebox credential with the rogue one post-hoc.
        scenario.services[0]._make_config = (
            lambda mk=scenario.services[0]._make_config: _swap_cred(mk(), rogue_cred)
        )
        scenario.run_client(b"PING")
        assert any(isinstance(e, MiddleboxRejected) for e in scenario.events)
        assert scenario.client_received == [b"REPLY:PING"]  # relayed instead


def _swap_cred(config, credential):
    config.tls.credential = credential
    return config


class TestAttestation:
    def test_attested_middlebox_measurement_surfaces(self, rng, pki):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        code = EnclaveCode(name="proxy", version="2.0", image=b"audited-build")
        enclave = platform.launch_enclave(code)
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("proxy", MiddleboxRole.CLIENT_SIDE, identity, {"enclave": enclave})
            ],
            server_kind="tls",
            client_config_kwargs={
                "require_middlebox_attestation": True,
                "middlebox_attestation_verifier": service.verifier(
                    {code.measurement}
                ),
            },
        ).run_client()
        middlebox = scenario.established_event.middleboxes[0]
        assert middlebox.measurement == code.measurement

    def test_unattested_middlebox_rejected_when_required(self, rng, pki):
        service = AttestationService(rng.fork(b"ias"))
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],  # no enclave
            server_kind="tls",
            client_config_kwargs={
                "require_middlebox_attestation": True,
                "middlebox_attestation_verifier": service.verifier(None),
            },
        ).run_client(b"PING")
        assert any(isinstance(e, MiddleboxRejected) for e in scenario.events)
        assert scenario.established_event.middleboxes == ()
        # ... but the session itself survives, relayed.
        assert scenario.client_received == [b"REPLY:PING"]

    def test_substituted_code_rejected(self, rng, pki):
        service = AttestationService(rng.fork(b"ias"))
        platform = Platform(service, malicious=True)
        good = EnclaveCode(name="proxy", version="2.0", image=b"audited-build")
        platform.plant_code_substitution(
            EnclaveCode(name="proxy", version="2.0", image=b"backdoored")
        )
        enclave = platform.launch_enclave(good)
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("proxy", MiddleboxRole.CLIENT_SIDE, identity, {"enclave": enclave})
            ],
            server_kind="tls",
            client_config_kwargs={
                "require_middlebox_attestation": True,
                "middlebox_attestation_verifier": service.verifier(
                    {good.measurement}
                ),
            },
        ).run_client()
        assert any(isinstance(e, MiddleboxRejected) for e in scenario.events)
        assert scenario.established_event.middleboxes == ()


class TestAutoRole:
    def test_auto_joins_client_side_when_extension_present(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("auto-mb", MiddleboxRole.AUTO, tagger(b"+A"), {})],
            server_kind="tls",
        ).run_client(b"X")
        assert scenario.client_received == [b"REPLY:X+A"]
        assert scenario.middlebox_engine().mode == "client-side"

    def test_auto_announces_server_side_for_legacy_client(self, rng, pki):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("auto-mb", MiddleboxRole.AUTO, tagger(b"+A"), {})],
            client_kind="tls",
            server_kind="mbtls",
        ).run_client(b"X")
        assert scenario.server_received == [b"X+A"]
        assert scenario.middlebox_engine().mode == "server-side"
