"""Property-based tests on the mbTLS data plane and key plumbing."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import MbTLSScenario, identity
from repro.core.config import MiddleboxRole
from repro.core.keys import (
    BRIDGE_START_SEQUENCE,
    bridge_hop_keys,
    build_hop_chain,
    generate_hop_keys,
    hop_states_for_endpoint,
    states_from_hop_keys,
)
from repro.crypto.drbg import HmacDrbg
from repro.tls.ciphersuites import suite_by_code
from repro.tls.keyschedule import KeyBlock
from repro.wire.records import ContentType


class TestDataPlaneProperties:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=4096), min_size=1, max_size=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_arbitrary_payloads_survive_the_middlebox(self, pki, payloads, seed):
        """Any sequence of payloads crosses a middlebox chain intact."""
        rng = HmacDrbg(seed.to_bytes(4, "big"))
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
            server_kind="tls",
            server_reply=lambda data: b"",  # no echo: measure one direction
        ).run_client(payloads[0])
        for payload in payloads[1:]:
            scenario.client_driver.send_application_data(payload)
            scenario.network.sim.run()
        assert b"".join(scenario.server_received) == b"".join(payloads)


class TestHopKeyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        count=st.integers(min_value=0, max_value=6),
        client_side=st.booleans(),
        seed=st.binary(min_size=1, max_size=8),
    )
    def test_chain_shape(self, count, client_side, seed):
        suite = suite_by_code(0xC030)
        rng = HmacDrbg(seed)
        bridge = bridge_hop_keys(
            suite,
            KeyBlock(
                client_write_key=b"c" * 32,
                server_write_key=b"s" * 32,
                client_write_iv=b"ci" * 2,
                server_write_iv=b"si" * 2,
            ),
        )
        chain = build_hop_chain(suite, count, rng, bridge, client_side=client_side)
        assert len(chain) == count + 1
        bridge_position = -1 if client_side else 0
        assert chain[bridge_position].client_to_server_seq == BRIDGE_START_SEQUENCE
        # Fresh hops start at zero and are pairwise distinct.
        fresh = chain[:-1] if client_side else chain[1:]
        keys = [hop.client_write_key for hop in fresh]
        assert len(set(keys)) == len(keys)
        for hop in fresh:
            assert hop.client_to_server_seq == 0
            assert hop.client_write_key != hop.server_write_key

    @settings(max_examples=30, deadline=None)
    @given(seed=st.binary(min_size=1, max_size=8), data=st.binary(max_size=256))
    def test_hop_states_interoperate(self, seed, data):
        """An endpoint's write state and a middlebox's read state built from
        the same HopKeys always agree."""
        suite = suite_by_code(0xC030)
        rng = HmacDrbg(seed)
        keys = generate_hop_keys(suite, rng)
        _, client_write = hop_states_for_endpoint(suite, keys, is_client=True)
        mbox_c2s_read, _ = states_from_hop_keys(suite, keys)
        record = client_write.protect(ContentType.APPLICATION_DATA, data)
        assert mbox_c2s_read.unprotect(record) == data

    @settings(max_examples=20, deadline=None)
    @given(seed=st.binary(min_size=1, max_size=8))
    def test_directions_are_independent(self, seed):
        suite = suite_by_code(0xC030)
        rng = HmacDrbg(seed)
        keys = generate_hop_keys(suite, rng)
        c2s, s2c = states_from_hop_keys(suite, keys)
        record = c2s.protect(ContentType.APPLICATION_DATA, b"hello")
        with pytest.raises(Exception):
            s2c.clone_at(0).unprotect(record)


class TestSuiteMatrix:
    @pytest.mark.parametrize("code", [0xC02F, 0xC030, 0x009F, 0xCCA8])
    def test_mbtls_session_under_each_suite(self, rng, pki, code):
        scenario = MbTLSScenario(
            pki, rng,
            mbox_specs=[
                ("proxy", MiddleboxRole.CLIENT_SIDE, identity,
                 {"cipher_suites": (code,)})
            ],
            server_kind="tls",
            client_tls_kwargs={"cipher_suites": (code,)},
        )
        # The legacy server must accept the suite too.
        scenario.run_client(b"PING")
        # Server default config includes all suites; assert negotiated code.
        event = scenario.established_event
        assert event is not None and event.cipher_suite == code
        assert scenario.client_received == [b"REPLY:PING"]


class TestWarmAeadContexts:
    def test_chain_build_primes_the_aead_cache(self):
        from repro.core.keys import generate_hop_keys, warm_aead_contexts
        from repro.tls.record_layer import ConnectionState, aead_for

        suite = suite_by_code(0xC030)
        rng = HmacDrbg(b"warm-aead")
        hop = generate_hop_keys(suite, rng)
        warm_aead_contexts(suite, [hop])
        # Building states afterwards reuses the primed contexts.
        state = ConnectionState(
            suite, hop.client_write_key, hop.client_write_iv
        )
        assert state._aead is aead_for(suite, hop.client_write_key)
