"""The baseline protocols: split TLS, shared-key, mcTLS, splice relay."""

import pytest

from repro.baselines.mctls import ContextPermission, McTLSSession
from repro.baselines.relay import SpliceRelayService
from repro.baselines.split_tls import SplitTLSService
from repro.baselines.shared_key import KeySharingService
from repro.errors import IntegrityError, PolicyError
from repro.netsim.driver import EngineDriver
from repro.netsim.network import Network
from repro.pki.authority import CertificateAuthority
from repro.pki.store import TrustStore
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ApplicationData, HandshakeComplete


def three_host_network():
    network = Network()
    for name in ("client", "mbox", "server"):
        network.add_host(name)
    network.add_link("client", "mbox", 0.001)
    network.add_link("mbox", "server", 0.001)
    return network


def run_tls_fetch(network, rng, pki, trust_store, received, server_name="server"):
    def accept(socket, source):
        engine = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server"))
        )
        driver = EngineDriver(engine, socket)
        driver.on_event = (
            lambda event: driver.send_application_data(b"PONG:" + event.data)
            if isinstance(event, ApplicationData)
            else None
        )
        driver.start()

    network.host("server").listen(443, accept)
    engine = TLSClientEngine(
        TLSConfig(rng=rng.fork(b"cli"), trust_store=trust_store, server_name=server_name)
    )
    socket = network.host("client").connect("server", 443)

    def on_event(event):
        if isinstance(event, HandshakeComplete):
            driver.send_application_data(b"PING")
        elif isinstance(event, ApplicationData):
            received.append(event.data)

    driver = EngineDriver(engine, socket, on_event=on_event)
    driver.start()
    network.sim.run()
    return engine, driver


class TestSplitTLS:
    def test_interception_with_provisioned_root(self, rng, pki):
        network = three_host_network()
        interception_ca = CertificateAuthority(
            "corp-ca", rng.fork(b"corp"), key_bits=1024
        )
        service = SplitTLSService(
            network.host("mbox"), interception_ca, rng.fork(b"svc"),
            upstream_trust=pki.trust,
            process=lambda d, data: data + b"!" if d == "c2s" else data,
        )
        # The provisioning step: the client trusts the interception root.
        store = TrustStore([pki.ca.certificate, interception_ca.certificate])
        received = []
        run_tls_fetch(network, rng, pki, store, received)
        assert received == [b"PONG:PING!"]
        assert service.middleboxes[0].joined

    def test_fails_without_provisioned_root(self, rng, pki):
        network = three_host_network()
        interception_ca = CertificateAuthority(
            "corp-ca", rng.fork(b"corp2"), key_bits=1024
        )
        SplitTLSService(
            network.host("mbox"), interception_ca, rng.fork(b"svc"),
            upstream_trust=pki.trust,
        )
        received = []
        engine, _ = run_tls_fetch(network, rng, pki, pki.trust, received)
        assert received == [] and not engine.handshake_complete

    def test_client_sees_fabricated_certificate(self, rng, pki):
        """The structural weakness: the client authenticates the
        interceptor's certificate, not the real server's."""
        network = three_host_network()
        interception_ca = CertificateAuthority(
            "corp-ca", rng.fork(b"corp3"), key_bits=1024
        )
        SplitTLSService(
            network.host("mbox"), interception_ca, rng.fork(b"svc"),
            upstream_trust=pki.trust,
        )
        store = TrustStore([pki.ca.certificate, interception_ca.certificate])
        received = []
        engine, _ = run_tls_fetch(network, rng, pki, store, received)
        assert engine.peer_certificate.issuer == "corp-ca"  # not the real CA

    def test_non_validating_interceptor_accepts_rogue_server(self, rng, pki, session_rng):
        """If the middlebox skips upstream validation the client cannot
        tell — interception hides a rogue server entirely."""
        rogue_ca = CertificateAuthority("rogue", session_rng.fork(b"rg"), key_bits=1024)
        rogue_cred = rogue_ca.issue_credential("server", rng=session_rng.fork(b"rgk"))
        network = three_host_network()
        interception_ca = CertificateAuthority(
            "corp-ca", rng.fork(b"corp4"), key_bits=1024
        )
        SplitTLSService(
            network.host("mbox"), interception_ca, rng.fork(b"svc"),
            upstream_trust=pki.trust,
            validate_upstream=False,  # the misconfiguration from [23]
        )

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(rng=rng.fork(b"srv"), credential=rogue_cred)
            )
            driver = EngineDriver(engine, socket)
            driver.on_event = (
                lambda event: driver.send_application_data(b"OWNED:" + event.data)
                if isinstance(event, ApplicationData)
                else None
            )
            driver.start()

        network.host("server").listen(443, accept)
        store = TrustStore([interception_ca.certificate])
        engine = TLSClientEngine(
            TLSConfig(rng=rng.fork(b"cli"), trust_store=store, server_name="server")
        )
        socket = network.host("client").connect("server", 443)
        received = []

        def on_event(event):
            if isinstance(event, HandshakeComplete):
                driver.send_application_data(b"PING")
            elif isinstance(event, ApplicationData):
                received.append(event.data)

        driver = EngineDriver(engine, socket, on_event=on_event)
        driver.start()
        network.sim.run()
        # The rogue server's data reaches the client with no alarm raised.
        assert received == [b"OWNED:PING"]


class TestKeySharing:
    def test_middlebox_reads_after_key_share(self, rng, pki):
        network = three_host_network()
        service = KeySharingService(network.host("mbox"))
        received = []

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server"))
            )
            driver = EngineDriver(engine, socket)
            driver.on_event = (
                lambda event: driver.send_application_data(b"PONG")
                if isinstance(event, ApplicationData)
                else None
            )
            driver.start()

        network.host("server").listen(443, accept)
        engine = TLSClientEngine(
            TLSConfig(rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server")
        )
        socket = network.host("client").connect("server", 443)

        def on_event(event):
            if isinstance(event, HandshakeComplete):
                suite, key_block = engine.export_key_block()
                service.share_keys(suite.code, key_block)
                driver.send_application_data(b"SECRET-PING")
            elif isinstance(event, ApplicationData):
                received.append(event.data)

        driver = EngineDriver(engine, socket, on_event=on_event)
        driver.start()
        network.sim.run()
        assert received == [b"PONG"]
        middlebox = service.middleboxes[0]
        assert b"SECRET-PING" in middlebox.plaintext_seen
        assert middlebox.records_processed >= 2


class TestMcTLS:
    def test_read_write_context(self, rng):
        session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1])
        client = session.endpoint_party()
        server = session.endpoint_party()
        record = client.seal(1, b"headers: ok")
        assert server.open(1, record, verify_endpoint_mac=True) == b"headers: ok"

    def test_read_only_middlebox_can_read(self, rng):
        session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1])
        client = session.endpoint_party()
        middlebox = session.middlebox_party({1: ContextPermission.READ})
        record = client.seal(1, b"visible")
        assert middlebox.open(1, record) == b"visible"

    def test_read_only_middlebox_modification_detected(self, rng):
        """mcTLS's key property: a read-only middlebox cannot forge the
        endpoint MAC, so its modifications are detected."""
        session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1])
        client = session.endpoint_party()
        middlebox = session.middlebox_party({1: ContextPermission.WRITE})
        server = session.endpoint_party()
        # A middlebox with write keys still cannot produce the endpoint MAC.
        tampered = middlebox.seal(1, b"modified by middlebox")
        with pytest.raises(IntegrityError):
            server.open(1, tampered, verify_endpoint_mac=True)
        # ... though writer-level verification accepts it.
        assert server.open(1, tampered, verify_endpoint_mac=False)

    def test_no_access_context_unreadable(self, rng):
        session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1, 2])
        client = session.endpoint_party()
        middlebox = session.middlebox_party({1: ContextPermission.READ})
        record = client.seal(2, b"body: secret")
        assert not middlebox.can_read(2)
        with pytest.raises(PolicyError):
            middlebox.open(2, record)

    def test_contexts_cryptographically_separated(self, rng):
        session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1, 2])
        keys_1 = session.keys_for(1, ContextPermission.WRITE)
        keys_2 = session.keys_for(2, ContextPermission.WRITE)
        assert keys_1.read_key != keys_2.read_key

    def test_contributory_key_derivation(self, rng):
        """Both endpoints contribute: sessions with different server halves
        produce different context keys (the both-must-authorize property)."""
        session_a = McTLSSession(rng.fork(b"c"), rng.fork(b"s1"), context_ids=[1])
        session_b = McTLSSession(rng.fork(b"c"), rng.fork(b"s2"), context_ids=[1])
        assert (
            session_a.keys_for(1, ContextPermission.READ).read_key
            != session_b.keys_for(1, ContextPermission.READ).read_key
        )

    def test_tampered_record_detected(self, rng):
        session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), context_ids=[1])
        client = session.endpoint_party()
        server = session.endpoint_party()
        record = bytearray(client.seal(1, b"data"))
        record[12] ^= 0xFF
        with pytest.raises(IntegrityError):
            server.open(1, bytes(record), verify_endpoint_mac=True)


class TestSpliceRelay:
    def test_relays_tls_unchanged(self, rng, pki):
        network = three_host_network()
        relay = SpliceRelayService(network.host("mbox"))
        received = []
        engine, _ = run_tls_fetch(network, rng, pki, pki.trust, received)
        assert received == [b"PONG:PING"]
        assert relay.connections == 1
        assert relay.bytes_relayed > 0
