"""Discrete-event simulator, network model, taps, and filters."""

import random

import pytest

from repro.errors import NetworkError, SimulationError
from repro.netsim.adversary import DroppingTap, MutatingTap, RecordingTap
from repro.netsim.filters import FilterPolicy, TLSFilter
from repro.netsim.network import Network
from repro.netsim.sim import Simulator, Timer
from repro.netsim.wheel import TimerWheel, WheelEntry
from repro.wire.records import ContentType, Record


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(0.1, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_run_until_time_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run(until=0.5)
        assert not fired and sim.now == 0.5
        sim.run()
        assert fired

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.1, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert not fired

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(0.5, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 1.5]

    def test_step_processes_one_event(self):
        sim = Simulator()
        order = []
        sim.schedule(0.2, lambda: order.append("b"))
        sim.schedule(0.1, lambda: order.append("a"))
        assert sim.step() is True
        assert order == ["a"] and sim.now == pytest.approx(0.1)
        assert sim.step() is True
        assert order == ["a", "b"]
        assert sim.step() is False

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        handle = sim.schedule(0.5, lambda: None)
        sim.schedule(1.5, lambda: None)
        assert sim.peek_time() == pytest.approx(0.5)
        handle.cancel()
        assert sim.peek_time() == pytest.approx(1.5)

    def test_reentrant_run_from_callback(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(0.1, lambda: order.append(("inner", sim.now)))
            # Re-entering the loop from inside a callback drains the
            # nested event before control returns here.
            sim.run(until=sim.now + 0.2)
            order.append(("resumed", sim.now))

        sim.schedule(1.0, outer)
        sim.schedule(2.0, lambda: order.append(("later", sim.now)))
        sim.run()
        assert order == [
            ("outer", 1.0),
            ("inner", pytest.approx(1.1)),
            ("resumed", pytest.approx(1.2)),
            ("later", 2.0),
        ]

    def test_pending_events_drops_on_cancel(self):
        sim = Simulator()
        handles = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_events == 5

    def test_mass_cancellation_reclaims_entries(self):
        # Regression: cancelled timers used to linger in the scheduler heap
        # until popped (lazy deletion).  At fleet timer counts that meant
        # unbounded garbage; the wheel must reclaim the slot eagerly, so
        # after a mass cancel the live-entry count reflects only survivors.
        sim = Simulator()
        timers = [
            Timer(sim, 5.0 + (i % 7) * 0.35, lambda: None) for i in range(20_000)
        ]
        assert sim.pending_events == 20_000
        for timer in timers[:-1]:
            timer.cancel()
        assert sim.pending_events == 1
        assert len(sim._wheel) + sim._ready_live == 1
        # Touching re-arms through the same eager path: no garbage either.
        survivor = timers[-1]
        for _ in range(1000):
            survivor.touch()
        assert sim.pending_events == 1


class TestTimerWheel:
    def _drain(self, wheel):
        fired = []
        while True:
            batch = wheel.pop_next_tick()
            if batch is None:
                return fired
            fired.extend(sorted(batch))

    def test_matches_reference_heap_order(self):
        # Randomized equivalence: inserts, cancels, and interleaved pops
        # must fire in exact (time, seq) order — the wheel's quantization
        # is an organizational detail, never a reordering.
        rng = random.Random(0xF1EE7)
        wheel = TimerWheel(resolution=1e-4)
        reference = []
        live = {}
        fired = []
        seq = 0
        for _ in range(5_000):
            action = rng.random()
            if action < 0.55 or not live:
                # Mix of sub-tick, in-level, cross-level, and far deadlines.
                base = wheel.current_tick * wheel.resolution
                delay = rng.choice([
                    rng.random() * 1e-5,
                    rng.random() * 0.02,
                    rng.random() * 5.0,
                    rng.random() * 120.0,
                ])
                entry = WheelEntry(base + delay, seq)
                seq += 1
                wheel.insert(entry)
                reference.append((entry.time, entry.seq))
                live[entry.seq] = entry
            elif action < 0.75:
                victim = live.pop(rng.choice(list(live)))
                assert wheel.remove(victim) is True
                reference.remove((victim.time, victim.seq))
            else:
                batch = wheel.pop_next_tick()
                if batch is not None:
                    for entry in sorted(batch):
                        fired.append((entry.time, entry.seq))
                        del live[entry.seq]
                        reference.remove((entry.time, entry.seq))
        fired.extend((e.time, e.seq) for e in self._drain(wheel))
        # Everything fired exactly once, in global (time, seq) order.
        assert fired == sorted(fired)
        assert len(wheel) == 0

    def test_far_future_overflow_rebuckets(self):
        wheel = TimerWheel(resolution=1e-4)
        near = WheelEntry(0.5, 0)
        far = WheelEntry(6 * 24 * 3600.0, 1)  # ~6 days: beyond the horizon
        wheel.insert(far)
        wheel.insert(near)
        assert len(wheel) == 2
        fired = self._drain(wheel)
        assert [e.seq for e in fired] == [0, 1]

    def test_remove_is_eager(self):
        wheel = TimerWheel()
        entries = [WheelEntry(0.001 * i, i) for i in range(1, 1001)]
        for entry in entries:
            wheel.insert(entry)
        for entry in entries[1:]:
            assert wheel.remove(entry) is True
            assert wheel.remove(entry) is False  # second remove is a no-op
        assert len(wheel) == 1
        # Internal check: no slot at any level still holds a removed entry.
        held = sum(len(slot) for level in wheel._levels for slot in level)
        assert held + len(wheel._overflow) == 1
        assert [e.seq for e in self._drain(wheel)] == [entries[0].seq]

    def test_same_tick_entries_fire_together(self):
        wheel = TimerWheel(resolution=1e-3)
        a = WheelEntry(0.0101, 7)
        b = WheelEntry(0.0109, 3)
        wheel.insert(a)
        wheel.insert(b)
        batch = wheel.pop_next_tick()
        assert sorted(batch) == [a, b]  # exact (time, seq) order intact
        assert wheel.pop_next_tick() is None


class TestNetwork:
    def _linear(self, *latencies) -> Network:
        network = Network()
        names = [f"h{i}" for i in range(len(latencies) + 1)]
        for name in names:
            network.add_host(name)
        for (a, b), latency in zip(zip(names, names[1:]), latencies):
            network.add_link(a, b, latency)
        return network

    def test_duplicate_host_rejected(self):
        network = Network()
        network.add_host("x")
        with pytest.raises(SimulationError):
            network.add_host("x")

    def test_shortest_path(self):
        network = self._linear(0.01, 0.01, 0.01)
        assert network.path_between("h0", "h3") == ["h0", "h1", "h2", "h3"]

    def test_no_route_raises(self):
        network = Network()
        network.add_host("a")
        network.add_host("b")
        with pytest.raises(NetworkError):
            network.path_between("a", "b")

    def test_path_metrics(self):
        network = self._linear(0.010, 0.020)
        latency, bandwidth = network.path_metrics(["h0", "h1", "h2"])
        assert latency == pytest.approx(0.030)

    def test_connect_establishes_after_one_rtt(self):
        network = self._linear(0.050)
        network.host("h1").listen(80, lambda sock, src: None)
        socket = network.host("h0").connect("h1", 80)
        network.sim.run()
        assert socket.connected
        # SYN at 50 ms, SYN-ACK back at 100 ms.
        assert network.sim.now == pytest.approx(0.100)

    def test_data_delivery_latency(self):
        network = self._linear(0.050)
        received = []

        def accept(sock, src):
            sock.on_data(lambda data: received.append((network.sim.now, data)))

        network.host("h1").listen(80, accept)
        socket = network.host("h0").connect("h1", 80)
        socket.send(b"early")  # queued until the connection establishes
        network.sim.run()
        assert received == [(pytest.approx(0.150), b"early")]

    def test_connection_refused(self):
        network = self._linear(0.001)
        network.host("h0").connect("h1", 81)
        with pytest.raises(NetworkError):
            network.sim.run()

    def test_bandwidth_serialization(self):
        network = Network()
        network.add_host("a")
        network.add_host("b")
        network.add_link("a", "b", 0.0, bandwidth=8_000)  # 1000 bytes/sec
        network.host("b").listen(80, lambda sock, src: sock.on_data(
            lambda data: arrivals.append(network.sim.now)))
        arrivals = []
        socket = network.host("a").connect("b", 80)
        network.sim.run()
        socket.send(b"x" * 1000)  # 1 second of serialization
        socket.send(b"y" * 1000)  # queued behind the first
        network.sim.run()
        assert arrivals[0] == pytest.approx(1.0, rel=0.01)
        assert arrivals[1] == pytest.approx(2.0, rel=0.01)

    def test_interception_splits_connection(self):
        network = self._linear(0.010, 0.010)
        flows = []
        network.host("h1").intercept(80, flows.append)
        network.host("h2").listen(80, lambda sock, src: None)
        socket = network.host("h0").connect("h2", 80)
        network.sim.run()
        assert len(flows) == 1
        assert flows[0].destination == "h2"
        # The client socket's peer is the interceptor, not the server.
        assert socket.connected

    def test_close_propagates(self):
        network = self._linear(0.010)
        closed = []

        def accept(sock, src):
            sock.on_close(lambda: closed.append(True))

        network.host("h1").listen(80, accept)
        socket = network.host("h0").connect("h1", 80)
        network.sim.run()
        socket.close()
        network.sim.run()
        assert closed == [True]


class TestTaps:
    def _two_hosts(self):
        network = Network()
        network.add_host("a")
        network.add_host("b")
        network.add_link("a", "b", 0.001)
        return network

    def test_recording_tap(self):
        network = self._two_hosts()
        tap = RecordingTap()
        network.on_new_stream(lambda stream, a, b: stream.add_tap(tap))
        network.host("b").listen(80, lambda sock, src: None)
        socket = network.host("a").connect("b", 80)
        network.sim.run()
        socket.send(b"observed")
        network.sim.run()
        assert tap.all_bytes() == b"observed"

    def test_mutating_tap(self):
        network = self._two_hosts()
        received = []
        network.on_new_stream(
            lambda stream, a, b: stream.add_tap(
                MutatingTap(lambda data: data.upper())
            )
        )
        network.host("b").listen(
            80, lambda sock, src: sock.on_data(received.append)
        )
        socket = network.host("a").connect("b", 80)
        network.sim.run()
        socket.send(b"lower")
        network.sim.run()
        assert received == [b"LOWER"]

    def test_dropping_tap_with_limit(self):
        network = self._two_hosts()
        received = []
        network.on_new_stream(
            lambda stream, a, b: stream.add_tap(DroppingTap(limit=1))
        )
        network.host("b").listen(80, lambda sock, src: sock.on_data(received.append))
        socket = network.host("a").connect("b", 80)
        network.sim.run()
        socket.send(b"first")
        socket.send(b"second")
        network.sim.run()
        assert received == [b"second"]


class TestFilters:
    def _run_through_filter(self, policy, records):
        network = Network()
        network.add_host("a")
        network.add_host("b")
        network.add_link("a", "b", 0.001)
        tls_filter = TLSFilter(policy)
        network.on_new_stream(lambda stream, a, b: stream.add_tap(tls_filter))
        received = []
        network.host("b").listen(80, lambda sock, src: sock.on_data(received.append))
        socket = network.host("a").connect("b", 80)
        network.sim.run()
        for record in records:
            socket.send(record.encode())
        network.sim.run()
        return b"".join(received), tls_filter

    def test_passthrough_forwards_everything(self):
        data, _ = self._run_through_filter(
            FilterPolicy.PASSTHROUGH,
            [Record(ContentType.MBTLS_ENCAPSULATED, b"\x01x")],
        )
        assert b"x" in data

    def test_grammar_check_forwards_mbtls_types(self):
        record = Record(ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT, b"")
        data, _ = self._run_through_filter(FilterPolicy.GRAMMAR_CHECK, [record])
        assert data == record.encode()

    def test_drop_unknown_drops_only_mbtls_records(self):
        standard = Record(ContentType.HANDSHAKE, b"hello")
        mbtls = Record(ContentType.MBTLS_ENCAPSULATED, b"\x01y")
        data, tls_filter = self._run_through_filter(
            FilterPolicy.DROP_UNKNOWN_TYPES, [standard, mbtls]
        )
        assert data == standard.encode()
        assert tls_filter.dropped_records == 1

    def test_reset_on_unknown_kills_stream(self):
        standard = Record(ContentType.HANDSHAKE, b"hello")
        mbtls = Record(ContentType.MBTLS_ENCAPSULATED, b"\x01y")
        data, tls_filter = self._run_through_filter(
            FilterPolicy.RESET_ON_UNKNOWN, [mbtls, standard]
        )
        assert data == b""
        assert tls_filter.killed
