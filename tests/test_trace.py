"""The handshake tracer: the Figure-3 ladder reconstructed from wiretaps."""

import pytest

from helpers import MbTLSScenario, identity
from repro.core.config import MiddleboxRole
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.trace import render_trace, trace_session
from repro.wire.records import ContentType


@pytest.fixture
def traced_scenario(rng, pki):
    scenario = MbTLSScenario(
        pki, rng,
        mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
        server_kind="tls",
    )
    adversary = GlobalAdversary(scenario.network)
    scenario.adversary = adversary
    scenario.run_client(b"PING")
    return scenario, trace_session(adversary)


class TestTrace:
    def test_events_are_time_ordered(self, traced_scenario):
        _, events = traced_scenario
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_figure3_message_sequence(self, traced_scenario):
        """The ladder shows the paper's Figure 3 structure."""
        _, events = traced_scenario
        descriptions = [event.description for event in events]
        # The primary ClientHello opens the session...
        assert descriptions[0] == "ClientHello"
        # ... and is forwarded by the middlebox.
        assert descriptions[1] == "ClientHello"
        # The secondary ServerHello rides a subchannel; key material follows.
        assert any(
            "Encapsulated[subch 1]" in description and "ServerHello" in description
            for description in descriptions
        )
        assert any("MBTLSKeyMaterial" in description for description in descriptions)
        # Application data flows at the end.
        assert any(description.startswith("ApplicationData") for description in descriptions)

    def test_secondary_hello_injected_before_primary_forwarded(self, traced_scenario):
        """The paper's ordering: the middlebox injects its secondary
        ServerHello before forwarding the primary one toward the client."""
        _, events = traced_scenario
        client_bound = [
            event for event in events if event.receiver == "client"
        ]
        secondary_index = next(
            index for index, event in enumerate(client_bound)
            if "Encapsulated[subch 1]" in event.description
            and "ServerHello" in event.description
        )
        primary_index = next(
            index for index, event in enumerate(client_bound)
            if event.description.startswith("ServerHello")
        )
        assert secondary_index < primary_index

    def test_render_trace_formats(self, traced_scenario):
        _, events = traced_scenario
        rendered = render_trace(events, limit=5)
        assert "ms" in rendered and "->" in rendered
        assert "more records" in rendered

    def test_encrypted_handshake_records_marked(self, traced_scenario):
        _, events = traced_scenario
        # The Finished messages travel after ChangeCipherSpec, encrypted.
        assert any("encrypted" in event.description for event in events)


class TestProtectionTracking:
    """Regression: protection state is per *channel*, not per hop.

    The outer record stream and each encapsulated subchannel flip to
    encrypted independently; a channel-blind ``seen_ccs`` mislabeled
    cleartext secondary-handshake fragments as "Handshake (encrypted)"
    as soon as any CCS crossed the hop (ISSUE 5 satellite)."""

    HOP = ("client", "proxy")

    @staticmethod
    def _describe(record, seen):
        from repro.netsim.trace import _describe

        return _describe(record, seen, TestProtectionTracking.HOP)

    @staticmethod
    def _encap(subchannel_id, inner):
        from repro.wire.mbtls import EncapsulatedRecord

        return EncapsulatedRecord(subchannel_id, inner).to_record()

    def test_outer_ccs_leaves_inner_fragments_cleartext(self):
        from repro.wire.records import Record

        seen = set()
        fragment = Record(ContentType.HANDSHAKE, b"\x0b\x00\xff\xff")
        self._describe(Record(ContentType.CHANGE_CIPHER_SPEC, b"\x01"), seen)
        # The outer stream is now encrypted ...
        assert "encrypted" in self._describe(fragment, seen)
        # ... but a secondary-handshake fragment on a subchannel is not.
        assert "fragment" in self._describe(self._encap(1, fragment), seen)

    def test_inner_ccs_flips_only_its_subchannel(self):
        from repro.wire.records import Record

        seen = set()
        fragment = Record(ContentType.HANDSHAKE, b"\x0b\x00\xff\xff")
        ccs = Record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
        self._describe(self._encap(1, ccs), seen)
        assert "encrypted" in self._describe(self._encap(1, fragment), seen)
        # Sibling subchannel and the outer stream stay cleartext.
        assert "fragment" in self._describe(self._encap(2, fragment), seen)
        assert "fragment" in self._describe(fragment, seen)

    def test_channels_are_direction_scoped(self):
        from repro.netsim.trace import _describe
        from repro.wire.records import Record

        seen = set()
        fragment = Record(ContentType.HANDSHAKE, b"\x0b\x00\xff\xff")
        ccs = Record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
        _describe(ccs, seen, ("client", "proxy"))
        assert "encrypted" in _describe(fragment, seen, ("client", "proxy"))
        assert "fragment" in _describe(fragment, seen, ("proxy", "client"))


class TestSpanAnnotations:
    def test_spans_interleave_into_ladder(self):
        from repro.obs.tracing import SpanRecorder

        recorder = SpanRecorder(clock=lambda: 0.0)
        span = recorder.begin("handshake.test", party="client")
        recorder.end(span)
        recorder.mark("driver.note", party="client")

        adversary = GlobalAdversary.__new__(GlobalAdversary)
        adversary.wiretaps = []
        events = trace_session(adversary, tracer=recorder)
        descriptions = [event.description for event in events]
        assert "[begin client/handshake.test]" in descriptions
        assert any(d.startswith("[end   client/handshake.test") for d in descriptions)
        assert "[mark  client/driver.note]" in descriptions
        assert all(event.annotation for event in events)
        # Annotations render with a dot, not a hop arrow.
        rendered = render_trace(events)
        assert "·" in rendered and "->" not in rendered

    def test_annotations_sort_before_records_at_same_time(self, traced_scenario):
        from repro.obs.tracing import SpanRecorder

        scenario, plain_events = traced_scenario
        recorder = SpanRecorder(clock=lambda: 0.0)
        recorder.mark("session.start", party="client")
        events = trace_session(scenario.adversary, tracer=recorder)
        # The time-zero mark lands before the time-zero ClientHello, and
        # the record ladder itself is unchanged by the interleaving.
        assert events[0].annotation
        assert events[0].description == "[mark  client/session.start]"
        records = [event for event in events if not event.annotation]
        assert [e.description for e in records] == [
            e.description for e in plain_events
        ]
