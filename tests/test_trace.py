"""The handshake tracer: the Figure-3 ladder reconstructed from wiretaps."""

import pytest

from helpers import MbTLSScenario, identity
from repro.core.config import MiddleboxRole
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.trace import render_trace, trace_session


@pytest.fixture
def traced_scenario(rng, pki):
    scenario = MbTLSScenario(
        pki, rng,
        mbox_specs=[("proxy", MiddleboxRole.CLIENT_SIDE, identity, {})],
        server_kind="tls",
    )
    adversary = GlobalAdversary(scenario.network)
    scenario.run_client(b"PING")
    return scenario, trace_session(adversary)


class TestTrace:
    def test_events_are_time_ordered(self, traced_scenario):
        _, events = traced_scenario
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_figure3_message_sequence(self, traced_scenario):
        """The ladder shows the paper's Figure 3 structure."""
        _, events = traced_scenario
        descriptions = [event.description for event in events]
        # The primary ClientHello opens the session...
        assert descriptions[0] == "ClientHello"
        # ... and is forwarded by the middlebox.
        assert descriptions[1] == "ClientHello"
        # The secondary ServerHello rides a subchannel; key material follows.
        assert any(
            "Encapsulated[subch 1]" in description and "ServerHello" in description
            for description in descriptions
        )
        assert any("MBTLSKeyMaterial" in description for description in descriptions)
        # Application data flows at the end.
        assert any(description.startswith("ApplicationData") for description in descriptions)

    def test_secondary_hello_injected_before_primary_forwarded(self, traced_scenario):
        """The paper's ordering: the middlebox injects its secondary
        ServerHello before forwarding the primary one toward the client."""
        _, events = traced_scenario
        client_bound = [
            event for event in events if event.receiver == "client"
        ]
        secondary_index = next(
            index for index, event in enumerate(client_bound)
            if "Encapsulated[subch 1]" in event.description
            and "ServerHello" in event.description
        )
        primary_index = next(
            index for index, event in enumerate(client_bound)
            if event.description.startswith("ServerHello")
        )
        assert secondary_index < primary_index

    def test_render_trace_formats(self, traced_scenario):
        _, events = traced_scenario
        rendered = render_trace(events, limit=5)
        assert "ms" in rendered and "->" in rendered
        assert "more records" in rendered

    def test_encrypted_handshake_records_marked(self, traced_scenario):
        _, events = traced_scenario
        # The Finished messages travel after ChangeCipherSpec, encrypted.
        assert any("encrypted" in event.description for event in events)
