"""Fleet orchestration: determinism, replay, admission, and equivalence.

The contract under test (ISSUE 7):

* same seed -> byte-identical deterministic report core (the
  ``BENCH_fleet.json`` snapshot minus wall-clock and git state);
* any shard replays from ``(seed, shard_id)`` alone with a ledger digest
  identical to its digest inside the full-fleet run;
* a session driven through the orchestrator's admission machinery is
  byte-identical on the wire to the same session driven by a standalone
  :class:`SessionSupervisor`;
* admission control defers on the inflight cap and on middlebox outbox
  backpressure, and recovers once the pressure clears.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import obs
from repro.bench.fleet import (
    FLEET_SCHEMA_VERSION,
    FleetConfig,
    deterministic_core,
    quick_config,
    run_fleet,
)
from repro.bench.scenarios import Pki
from repro.core.config import MbTLSEndpointConfig
from repro.core.drivers import SessionSupervisor, serve_mbtls
from repro.core.orchestrator import SessionOrchestrator, shard_rng
from repro.crypto.drbg import HmacDrbg
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.network import Network
from repro.netsim.sim import Simulator
from repro.tls.config import TLSConfig

SMALL = FleetConfig(
    sessions=40,
    num_shards=2,
    servers_per_shard=2,
    arrival_ramp=2.0,
    session_lifetime=6.0,
)


@pytest.fixture(scope="module")
def small_report():
    return run_fleet(SMALL)


# ---------------------------------------------------------------- determinism


class TestFleetDeterminism:
    def test_same_seed_byte_identical_snapshot(self, small_report):
        again = run_fleet(SMALL)
        assert (
            json.dumps(deterministic_core(small_report), sort_keys=True)
            == json.dumps(deterministic_core(again), sort_keys=True)
        )

    def test_per_shard_replay_from_seed_and_shard_id(self, small_report):
        solo = run_fleet(SMALL, only_shard=1)
        assert (
            solo["digests"]["shards"]["1"]
            == small_report["digests"]["shards"]["1"]
        )
        # The replayed shard actually did the work (non-empty ledger).
        empty = hashlib.sha256(b"[]").hexdigest()
        assert solo["digests"]["shards"]["1"] != empty
        # And the untouched shard stayed empty.
        assert solo["digests"]["shards"]["0"] == empty

    def test_shards_differ_from_each_other(self, small_report):
        shards = small_report["digests"]["shards"]
        assert shards["0"] != shards["1"]


# --------------------------------------------------------------------- report


class TestFleetReport:
    def test_schema_and_required_sections(self, small_report):
        assert small_report["schema_version"] == FLEET_SCHEMA_VERSION
        assert small_report["bench"] == "fleet"
        for section in ("sessions", "concurrency", "handshake_seconds",
                        "resumption", "admission", "digests", "sim", "wall"):
            assert section in small_report

    def test_population_churn_outcomes(self, small_report):
        sessions = small_report["sessions"]
        assert sessions["established"] == sessions["submitted"]
        assert sessions["failed"] == 0
        # Warmup seeded the stores, so the bulk wave resumes.
        assert small_report["resumption"]["hit_rate"] == 1.0
        # Sessions overlap by construction (ramp < lifetime).
        peak = small_report["concurrency"]["peak_concurrent"]
        assert peak >= SMALL.sessions * 0.9
        latency = small_report["handshake_seconds"]
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]

    def test_wall_section_excluded_from_core(self, small_report):
        core = deterministic_core(small_report)
        assert "wall" not in core and "git" not in core
        assert "sim" in core  # virtual time IS deterministic

    def test_quick_config_targets_fleet_scale(self):
        config = quick_config()
        # The acceptance bar: the quick run must be able to cross 10^4
        # concurrent sessions even after per-network-type abandonment.
        assert config.sessions >= 10_500
        assert config.arrival_ramp < config.session_lifetime


# ------------------------------------------------- orchestrator == standalone


def _build_single_session_world(seed: bytes, *, network: Network,
                                rng: HmacDrbg, pki: Pki):
    """One client, one server, no middleboxes; returns the client config."""
    network.add_host("client")
    network.add_host("server")
    network.add_link("client", "server", 0.01)
    credential = pki.credential("server")

    def make_server_config():
        return MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"server"), credential=credential),
            middlebox_trust_store=pki.trust,
        )

    serve_mbtls(network.host("server"), make_server_config)

    def make_client_config():
        return MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"client"),
                trust_store=pki.trust,
                server_name="server",
            ),
            middlebox_trust_store=pki.trust,
        )

    return make_client_config


class TestOrchestratorEquivalence:
    def test_orchestrated_session_byte_identical_to_standalone(self):
        seed = b"fleet-golden"

        # World A: the session admitted through the orchestrator.
        orchestrator = SessionOrchestrator(seed, num_shards=1)
        shard = orchestrator.shards[0]
        pki_a = Pki(rng=HmacDrbg(seed, personalization=b"pki"))
        adversary_a = GlobalAdversary(shard.network)
        make_client_a = _build_single_session_world(
            seed, network=shard.network, rng=shard.rng, pki=pki_a)

        def factory(shard_obj, on_state):
            return SessionSupervisor(
                shard.network.host("client"), "server", make_client_a,
                start=False, on_state=on_state,
            )

        orchestrator.submit(0, factory, info={"case": "golden"})
        orchestrator.sim.run()

        # World B: the identical session driven standalone.
        sim = Simulator()
        network = Network(sim)
        rng = shard_rng(seed, 0)  # the exact stream shard 0 used
        pki_b = Pki(rng=HmacDrbg(seed, personalization=b"pki"))
        adversary_b = GlobalAdversary(network)
        make_client_b = _build_single_session_world(
            seed, network=network, rng=rng, pki=pki_b)
        supervisor = SessionSupervisor(
            network.host("client"), "server", make_client_b)
        sim.run()

        assert supervisor.outcome == "established"
        assert shard.ledger == []  # still live, so not settled yet
        assert orchestrator.live_sessions == 1
        wire_a = hashlib.sha256(adversary_a.observed_bytes()).hexdigest()
        wire_b = hashlib.sha256(adversary_b.observed_bytes()).hexdigest()
        assert wire_a == wire_b


# ------------------------------------------------------------------ admission


class _FakeSupervisor:
    """Just enough of SessionSupervisor for the admission machinery."""

    def __init__(self, on_state):
        self.on_state = on_state
        self.started = False
        self.attempt = 1
        self.failure = None
        self.events = []
        self.handshake_latency = 0.001

    def start(self):
        self.started = True


class _StubService:
    def __init__(self, fill: float):
        self.fill = fill

    def max_outbox_fill(self) -> float:
        return self.fill


class TestAdmissionControl:
    def test_inflight_cap_defers_then_drains(self):
        with obs.scoped() as plane:
            orchestrator = SessionOrchestrator(
                b"cap", num_shards=1, max_inflight_per_shard=1)
            created: list[_FakeSupervisor] = []

            def factory(shard, on_state):
                supervisor = _FakeSupervisor(on_state)
                created.append(supervisor)
                return supervisor

            for _ in range(3):
                orchestrator.submit(0, factory)
            assert len(created) == 1 and created[0].started
            assert plane.metrics.counter_value(
                "fleet.admission_deferred", shard="0", reason="capacity") > 0

            # Settling one session frees the slot for the next.
            created[0].on_state(created[0], "established")
            assert len(created) == 2
            created[0].on_state(created[0], "closed")
            created[1].on_state(created[1], "failed")
            assert len(created) == 3
            shard = orchestrator.shards[0]
            assert not shard.pending
            # Settled entries landed in the ledger in admission order.
            assert [e["outcome"] for e in shard.ledger] == [
                "established", "failed"]

    def test_backpressure_defers_and_recovers_on_timer(self):
        with obs.scoped() as plane:
            orchestrator = SessionOrchestrator(
                b"bp", num_shards=1, outbox_high_watermark=0.5)
            stub = _StubService(fill=0.9)
            orchestrator.shards[0].watch_service(stub)
            created: list[_FakeSupervisor] = []

            def factory(shard, on_state):
                supervisor = _FakeSupervisor(on_state)
                created.append(supervisor)
                return supervisor

            orchestrator.submit(0, factory)
            assert created == []  # over the watermark: deferred
            assert plane.metrics.counter_value(
                "fleet.admission_deferred", shard="0",
                reason="backpressure") == 1

            # Outbox stays full: the retry timer keeps deferring.
            orchestrator.sim.run(until=0.004)
            orchestrator.sim.run(until=0.006)
            assert created == []

            # Outbox drains: the next retry admits.
            stub.fill = 0.0
            orchestrator.sim.run(until=0.020)
            assert len(created) == 1 and created[0].started

    def test_watched_outbox_fill_is_max_over_services(self):
        orchestrator = SessionOrchestrator(b"fill", num_shards=1)
        shard = orchestrator.shards[0]
        assert shard.outbox_fill() == 0.0
        shard.watch_service(_StubService(0.25))
        shard.watch_service(_StubService(0.75))
        assert shard.outbox_fill() == 0.75
