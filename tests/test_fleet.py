"""Fleet orchestration: determinism, replay, admission, and resilience.

The contract under test (ISSUE 7 + ISSUE 8):

* same seed -> byte-identical deterministic report core (the
  ``BENCH_fleet.json`` snapshot minus wall-clock and git state), for
  clean *and* chaos runs;
* any shard replays from ``(seed, shard_id)`` alone with a ledger digest
  identical to its digest inside the full-fleet run;
* a session driven through the orchestrator's admission machinery is
  byte-identical on the wire to the same session driven by a standalone
  :class:`SessionSupervisor`;
* admission control defers on the inflight cap and on middlebox outbox
  backpressure, recovers once the pressure clears, and *sheds* under
  combined overload or an open circuit breaker;
* a retry storm against a dead server is bounded by the per-
  ``(shard, server)`` retry budget with the breaker open;
* a middlebox crash mid-fleet fails over to the standby and interrupted
  sessions recover;
* a drain that cannot settle raises with per-shard stuck-session
  diagnostics instead of a bare timeout.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import obs
from repro.bench.fleet import (
    FLEET_CHAOS_SCHEMA_VERSION,
    FLEET_SCHEMA_VERSION,
    FleetConfig,
    check_fleet_baseline,
    deterministic_core,
    quick_config,
    run_fleet,
)
from repro.bench.scenarios import Pki
from repro.core.config import MbTLSEndpointConfig
from repro.core.drivers import SessionSupervisor, serve_mbtls
from repro.core.orchestrator import (
    CircuitBreaker,
    ResiliencePolicy,
    RetryBudget,
    SessionOrchestrator,
    shard_rng,
)
from repro.crypto.drbg import HmacDrbg
from repro.errors import SimulationError
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.network import Network
from repro.netsim.sim import Simulator
from repro.tls.config import TLSConfig

SMALL = FleetConfig(
    sessions=40,
    num_shards=2,
    servers_per_shard=2,
    arrival_ramp=2.0,
    session_lifetime=6.0,
)


@pytest.fixture(scope="module")
def small_report():
    return run_fleet(SMALL)


# ---------------------------------------------------------------- determinism


class TestFleetDeterminism:
    def test_same_seed_byte_identical_snapshot(self, small_report):
        again = run_fleet(SMALL)
        assert (
            json.dumps(deterministic_core(small_report), sort_keys=True)
            == json.dumps(deterministic_core(again), sort_keys=True)
        )

    def test_per_shard_replay_from_seed_and_shard_id(self, small_report):
        solo = run_fleet(SMALL, only_shard=1)
        assert (
            solo["digests"]["shards"]["1"]
            == small_report["digests"]["shards"]["1"]
        )
        # The replayed shard actually did the work (non-empty ledger).
        empty = hashlib.sha256(b"[]").hexdigest()
        assert solo["digests"]["shards"]["1"] != empty
        # And the untouched shard stayed empty.
        assert solo["digests"]["shards"]["0"] == empty

    def test_shards_differ_from_each_other(self, small_report):
        shards = small_report["digests"]["shards"]
        assert shards["0"] != shards["1"]

    def test_worker_processes_match_serial(self, small_report):
        # Shards are independent determinism domains: running them in
        # worker processes must reproduce every per-shard digest, the
        # fleet digest, and the session outcomes bit for bit.
        workers = run_fleet(SMALL, workers=2)
        assert workers["digests"] == small_report["digests"]
        assert workers["sessions"] == small_report["sessions"]
        assert workers["handshake_seconds"] == small_report["handshake_seconds"]
        assert workers["config"]["workers"] == 2
        # Cross-process peaks are summed per shard, not interleaved.
        assert workers["concurrency"]["peak_basis"] == "per_shard_sum"
        assert small_report["concurrency"]["peak_basis"] == "instantaneous"
        assert (
            workers["concurrency"]["peak_concurrent"]
            >= small_report["concurrency"]["peak_concurrent"]
        )

    def test_workers_reject_solo_shard_replay(self):
        with pytest.raises(ValueError):
            run_fleet(SMALL, only_shard=1, workers=2)


# --------------------------------------------------------------------- report


class TestFleetReport:
    def test_schema_and_required_sections(self, small_report):
        assert small_report["schema_version"] == FLEET_SCHEMA_VERSION
        assert small_report["bench"] == "fleet"
        for section in ("sessions", "concurrency", "handshake_seconds",
                        "resumption", "admission", "digests", "sim", "wall"):
            assert section in small_report

    def test_population_churn_outcomes(self, small_report):
        sessions = small_report["sessions"]
        assert sessions["established"] == sessions["submitted"]
        assert sessions["failed"] == 0
        # Warmup seeded the stores, so the bulk wave resumes.
        assert small_report["resumption"]["hit_rate"] == 1.0
        # Sessions overlap by construction (ramp < lifetime).
        peak = small_report["concurrency"]["peak_concurrent"]
        assert peak >= SMALL.sessions * 0.9
        latency = small_report["handshake_seconds"]
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]

    def test_wall_section_excluded_from_core(self, small_report):
        core = deterministic_core(small_report)
        assert "wall" not in core and "git" not in core
        assert "sim" in core  # virtual time IS deterministic

    def test_quick_config_targets_fleet_scale(self):
        config = quick_config()
        # The acceptance bar: the quick run must be able to cross 10^4
        # concurrent sessions even after per-network-type abandonment.
        assert config.sessions >= 10_500
        assert config.arrival_ramp < config.session_lifetime


# ------------------------------------------------- orchestrator == standalone


def _build_single_session_world(seed: bytes, *, network: Network,
                                rng: HmacDrbg, pki: Pki):
    """One client, one server, no middleboxes; returns the client config."""
    network.add_host("client")
    network.add_host("server")
    network.add_link("client", "server", 0.01)
    credential = pki.credential("server")

    def make_server_config():
        return MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"server"), credential=credential),
            middlebox_trust_store=pki.trust,
        )

    serve_mbtls(network.host("server"), make_server_config)

    def make_client_config():
        return MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"client"),
                trust_store=pki.trust,
                server_name="server",
            ),
            middlebox_trust_store=pki.trust,
        )

    return make_client_config


class TestOrchestratorEquivalence:
    def test_orchestrated_session_byte_identical_to_standalone(self):
        seed = b"fleet-golden"

        # World A: the session admitted through the orchestrator.
        orchestrator = SessionOrchestrator(seed, num_shards=1)
        shard = orchestrator.shards[0]
        pki_a = Pki(rng=HmacDrbg(seed, personalization=b"pki"))
        adversary_a = GlobalAdversary(shard.network)
        make_client_a = _build_single_session_world(
            seed, network=shard.network, rng=shard.rng, pki=pki_a)

        def factory(shard_obj, on_state):
            return SessionSupervisor(
                shard.network.host("client"), "server", make_client_a,
                start=False, on_state=on_state,
            )

        orchestrator.submit(0, factory, info={"case": "golden"})
        orchestrator.sim.run()

        # World B: the identical session driven standalone.
        sim = Simulator()
        network = Network(sim)
        rng = shard_rng(seed, 0)  # the exact stream shard 0 used
        pki_b = Pki(rng=HmacDrbg(seed, personalization=b"pki"))
        adversary_b = GlobalAdversary(network)
        make_client_b = _build_single_session_world(
            seed, network=network, rng=rng, pki=pki_b)
        supervisor = SessionSupervisor(
            network.host("client"), "server", make_client_b)
        sim.run()

        assert supervisor.outcome == "established"
        assert shard.ledger == []  # still live, so not settled yet
        assert orchestrator.live_sessions == 1
        wire_a = hashlib.sha256(adversary_a.observed_bytes()).hexdigest()
        wire_b = hashlib.sha256(adversary_b.observed_bytes()).hexdigest()
        assert wire_a == wire_b


# ------------------------------------------------------------------ admission


class _FakeSupervisor:
    """Just enough of SessionSupervisor for the admission machinery."""

    def __init__(self, on_state):
        self.on_state = on_state
        self.started = False
        self.attempt = 1
        self.failure = None
        self.events = []
        self.handshake_latency = 0.001

    def start(self):
        self.started = True


class _StubService:
    def __init__(self, fill: float):
        self.fill = fill

    def max_outbox_fill(self) -> float:
        return self.fill


class TestAdmissionControl:
    def test_inflight_cap_defers_then_drains(self):
        with obs.scoped() as plane:
            orchestrator = SessionOrchestrator(
                b"cap", num_shards=1, max_inflight_per_shard=1)
            created: list[_FakeSupervisor] = []

            def factory(shard, on_state):
                supervisor = _FakeSupervisor(on_state)
                created.append(supervisor)
                return supervisor

            for _ in range(3):
                orchestrator.submit(0, factory)
            assert len(created) == 1 and created[0].started
            assert plane.metrics.counter_value(
                "fleet.admission_deferred", shard="0", reason="capacity") > 0

            # Settling one session frees the slot for the next.
            created[0].on_state(created[0], "established")
            assert len(created) == 2
            created[0].on_state(created[0], "closed")
            created[1].on_state(created[1], "failed")
            assert len(created) == 3
            shard = orchestrator.shards[0]
            assert not shard.pending
            # Settled entries landed in the ledger in admission order.
            assert [e["outcome"] for e in shard.ledger] == [
                "established", "failed"]

    def test_backpressure_defers_and_recovers_on_timer(self):
        with obs.scoped() as plane:
            orchestrator = SessionOrchestrator(
                b"bp", num_shards=1, outbox_high_watermark=0.5)
            stub = _StubService(fill=0.9)
            orchestrator.shards[0].watch_service(stub)
            created: list[_FakeSupervisor] = []

            def factory(shard, on_state):
                supervisor = _FakeSupervisor(on_state)
                created.append(supervisor)
                return supervisor

            orchestrator.submit(0, factory)
            assert created == []  # over the watermark: deferred
            assert plane.metrics.counter_value(
                "fleet.admission_deferred", shard="0",
                reason="backpressure") == 1

            # Outbox stays full: the retry timer keeps deferring.
            orchestrator.sim.run(until=0.004)
            orchestrator.sim.run(until=0.006)
            assert created == []

            # Outbox drains: the next retry admits.
            stub.fill = 0.0
            orchestrator.sim.run(until=0.020)
            assert len(created) == 1 and created[0].started

    def test_watched_outbox_fill_is_max_over_services(self):
        orchestrator = SessionOrchestrator(b"fill", num_shards=1)
        shard = orchestrator.shards[0]
        assert shard.outbox_fill() == 0.0
        shard.watch_service(_StubService(0.25))
        shard.watch_service(_StubService(0.75))
        assert shard.outbox_fill() == 0.75

    def test_combined_overload_sheds_instead_of_deferring(self):
        with obs.scoped() as plane:
            orchestrator = SessionOrchestrator(
                b"shed", num_shards=1, max_inflight_per_shard=4,
                resilience=ResiliencePolicy(shed_ceiling=1.0),
            )
            created: list[_FakeSupervisor] = []

            def factory(shard, on_state):
                supervisor = _FakeSupervisor(on_state)
                created.append(supervisor)
                return supervisor

            for _ in range(4):
                orchestrator.submit(0, factory)
            assert len(created) == 4  # the cap itself is still admittable

            # inflight/max == 1.0 crosses the ceiling: reject, don't queue.
            orchestrator.submit(0, factory, info={"case": "overflow"})
            assert len(created) == 4
            shard = orchestrator.shards[0]
            assert not shard.pending
            assert shard.ledger[-1]["outcome"] == "shed"
            assert shard.ledger[-1]["shed_reason"] == "overload"
            assert plane.metrics.counter_value(
                "fleet.shed", shard="0", reason="overload") == 1


# ----------------------------------------------------------------- resilience


class TestCircuitBreaker:
    POLICY = ResiliencePolicy(
        breaker_failure_threshold=3,
        breaker_cooldown=1.0,
        breaker_half_open_probes=2,
    )

    def _advance(self, sim: Simulator, by: float) -> None:
        sim.schedule(by, lambda: None)
        sim.run()

    def test_state_machine_on_virtual_clock(self):
        sim = Simulator()
        with obs.scoped() as plane:
            breaker = CircuitBreaker(
                lambda: sim.now, self.POLICY, shard="0", server="srv")
            assert breaker.state == "closed" and breaker.allow()

            # Threshold consecutive failures open it; allow() refuses.
            for _ in range(3):
                breaker.record_failure()
            assert breaker.state == "open"
            assert not breaker.allow()

            # Cooldown elapses on the virtual clock: half-open, bounded
            # probes.
            self._advance(sim, 1.5)
            assert breaker.allow()  # probe 1 (transitions to half_open)
            assert breaker.state == "half_open"
            assert breaker.allow()  # probe 2
            assert not breaker.allow()  # probes exhausted

            # A half-open failure re-opens and restarts the cooldown.
            breaker.record_failure()
            assert breaker.state == "open"
            self._advance(sim, 0.5)
            assert not breaker.allow()  # still cooling down
            self._advance(sim, 1.0)
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state == "closed"

            # A success resets the consecutive-failure count.
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
            breaker.record_failure()
            breaker.record_failure()
            assert breaker.state == "closed"

            # Every transition was counted in the obs plane.
            assert plane.metrics.counter_value(
                "fleet.breaker_state", state="open",
                shard="0", server="srv") == 2

    def test_retry_budget_is_a_token_bucket_on_the_clock(self):
        sim = Simulator()
        policy = ResiliencePolicy(
            retry_budget_capacity=2.0, retry_budget_refill_per_sec=1.0)
        budget = RetryBudget(lambda: sim.now, policy)
        assert budget.take() and budget.take()
        assert not budget.take()  # exhausted
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert budget.take()  # one token refilled over one virtual second
        assert not budget.take()


class TestRetryStorm:
    def test_redials_bounded_by_budget_with_breaker_open(self):
        """Eight sessions dial a dead server: total redials across the
        storm stay within the retry budget, the breaker opens, and every
        session settles (failed or shed) instead of amplifying."""
        seed = b"retry-storm"
        with obs.scoped() as plane:
            resilience = ResiliencePolicy(
                breaker_failure_threshold=3,
                breaker_cooldown=60.0,  # never half-opens inside the test
                retry_budget_capacity=2.0,
                retry_budget_refill_per_sec=0.0,
            )
            orchestrator = SessionOrchestrator(
                seed, num_shards=1, resilience=resilience)
            shard = orchestrator.shards[0]
            pki = Pki(rng=HmacDrbg(seed, personalization=b"pki"))
            make_client = _build_single_session_world(
                seed, network=shard.network, rng=shard.rng, pki=pki)
            shard.network.crash_host("server")  # refuses every SYN

            def factory(shard_obj, on_state):
                return SessionSupervisor(
                    shard.network.host("client"), "server", make_client,
                    start=False, on_state=on_state,
                )

            for case in range(8):
                orchestrator.submit(
                    0, factory, info={"server": "server", "case": case})
            orchestrator.sim.run()
            orchestrator.drain(timeout=120.0)

            outcomes = [entry["outcome"] for entry in shard.ledger]
            assert len(outcomes) == 8
            assert all(outcome in ("failed", "shed") for outcome in outcomes)
            # The storm's redials are bounded by the token bucket, not by
            # sessions x max_attempts (which would be 8 x attempts).
            redials = plane.metrics.counter_value(
                "supervisor_redials", destination="server")
            assert 0 < redials <= resilience.retry_budget_capacity
            assert plane.metrics.counter_value(
                "fleet.retry_denied", shard="0", reason="breaker") > 0
            assert shard.breaker("server").state == "open"


class TestPermissivePolicy:
    def test_permissive_gate_never_denies(self):
        """The clean churn bench's policy must survive redial bursts far
        past anything an 11k-session ramp produces (the tight default
        opens after 5 consecutive failures and ~6 budget tokens)."""
        shard = SessionOrchestrator(
            b"permissive", num_shards=1,
            resilience=ResiliencePolicy.permissive(),
        ).shards[0]
        assert all(shard.allow_retry("srv") for _ in range(10_000))
        assert shard.breaker("srv").state == "closed"

    def test_bench_arms_the_tight_gate_only_under_chaos(self):
        from repro.bench.fleet import _resilience_for

        clean = _resilience_for(FleetConfig())
        assert clean == ResiliencePolicy.permissive()
        chaos = _resilience_for(FleetConfig(chaos=True))
        assert chaos == ResiliencePolicy()
        # The tight gate really is tight — the storm tests above rely
        # on the chaos bench keeping these within reach.
        assert chaos.breaker_failure_threshold <= 8
        assert chaos.retry_budget_capacity < float("inf")


# ---------------------------------------------------------------------- chaos


CHAOS_SMALL = FleetConfig(
    sessions=120,
    num_shards=2,
    servers_per_shard=2,
    arrival_ramp=4.0,
    session_lifetime=8.0,
    chaos=True,
    chaos_horizon=6.0,
)


@pytest.fixture(scope="module")
def chaos_report():
    return run_fleet(CHAOS_SMALL)


class TestChaosFleet:
    def test_schema_and_verdict_accounting(self, chaos_report):
        assert chaos_report["bench"] == "fleet_chaos"
        assert chaos_report["schema_version"] == FLEET_CHAOS_SCHEMA_VERSION
        verdicts = chaos_report["chaos"]["verdicts"]
        assert set(verdicts) == {
            "clean", "recovered", "degraded", "failed", "shed"}
        # Every root arrival chain (warmup + bulk) got exactly one verdict;
        # redials extend chains, they don't create new ones.
        roots = (CHAOS_SMALL.sessions
                 + CHAOS_SMALL.num_shards * CHAOS_SMALL.servers_per_shard)
        assert sum(verdicts.values()) == roots

    def test_middlebox_crash_fails_over_and_sessions_recover(self, chaos_report):
        chaos = chaos_report["chaos"]
        assert chaos["faults"].get("crash", 0) > 0
        assert chaos["failover"]["activations"] > 0
        assert chaos["failover"]["restores"] > 0
        assert chaos["verdicts"]["recovered"] > 0
        assert chaos["recovery_virtual_seconds"] >= 0.0

    def test_zero_stuck_sessions_after_drain(self, chaos_report):
        assert chaos_report["chaos"]["stuck_sessions"] == 0

    def test_same_seed_byte_identical_chaos_report(self, chaos_report):
        again = run_fleet(CHAOS_SMALL)
        assert chaos_report["digest"] == again["digest"]
        assert (
            json.dumps(deterministic_core(chaos_report), sort_keys=True)
            == json.dumps(deterministic_core(again), sort_keys=True)
        )

    def test_solo_shard_chaos_replay_matches_fleet(self, chaos_report):
        solo = run_fleet(CHAOS_SMALL, only_shard=0)
        assert (
            solo["digests"]["shards"]["0"]
            == chaos_report["digests"]["shards"]["0"]
        )


# ------------------------------------------------------------- baseline gate


class TestFleetBaselineGate:
    def test_baseline_passes_itself_and_flags_drift(self, small_report):
        assert check_fleet_baseline(small_report, small_report) == []

        worse = json.loads(json.dumps(small_report))
        worse["handshake_seconds"]["p50"] *= 2.0
        worse["resumption"]["hit_rate"] = (
            small_report["resumption"]["hit_rate"] - 0.2)
        worse["sessions"]["failed"] = 3
        worse["sim"]["events"] = small_report["sim"]["events"] * 2
        problems = check_fleet_baseline(worse, small_report)
        assert any("p50" in problem for problem in problems)
        assert any("hit-rate" in problem for problem in problems)
        assert any("failed" in problem for problem in problems)
        assert any("events per established" in problem for problem in problems)

    def test_schema_mismatch_is_flagged(self, small_report):
        stale = json.loads(json.dumps(small_report))
        stale["schema_version"] = FLEET_SCHEMA_VERSION + 1
        problems = check_fleet_baseline(small_report, stale)
        assert any("schema_version" in problem for problem in problems)


# ----------------------------------------------------------- drain diagnostics


class TestDrainDiagnostics:
    def test_drain_timeout_reports_stuck_shards(self):
        orchestrator = SessionOrchestrator(b"stuck", num_shards=2)

        def factory(shard, on_state):
            return _FakeSupervisor(on_state)  # admitted but never settles

        orchestrator.submit(1, factory, info={"server": "srv"})
        with pytest.raises(SimulationError) as excinfo:
            orchestrator.drain(timeout=0.05)

        diagnostics = excinfo.value.diagnostics
        assert diagnostics["stuck_sessions"] == 1
        by_shard = {entry["shard"]: entry for entry in diagnostics["shards"]}
        assert by_shard[0]["inflight"] == 0
        assert by_shard[1]["inflight"] == 1
        assert by_shard[1]["supervisors"][0]["server"] == "srv"
        # The rendered message names the stuck shard, not just "timeout".
        assert "shard 1" in str(excinfo.value)

    def test_settled_drain_raises_nothing(self):
        orchestrator = SessionOrchestrator(b"calm", num_shards=1)
        orchestrator.drain(timeout=0.01)  # nothing submitted: settled
