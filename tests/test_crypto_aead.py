"""AEAD tests: AES-GCM and ChaCha20-Poly1305 against the oracle, tamper
detection, and hypothesis round-trip properties."""

import pytest
from cryptography.hazmat.primitives.ciphers.aead import AESGCM as OracleGCM
from cryptography.hazmat.primitives.ciphers.aead import (
    ChaCha20Poly1305 as OracleChaCha,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha import ChaCha20Poly1305, chacha20_xor, poly1305_mac
from repro.crypto.gcm import AESGCM
from repro.errors import CryptoError, IntegrityError

AEADS = [
    ("gcm128", lambda key32: AESGCM(key32[:16]), lambda key32: OracleGCM(key32[:16])),
    ("gcm256", AESGCM, OracleGCM),
    ("chacha", ChaCha20Poly1305, OracleChaCha),
]


@pytest.mark.parametrize("name,ours,oracle", AEADS, ids=[a[0] for a in AEADS])
class TestAgainstOracle:
    def test_encrypt_matches_oracle(self, name, ours, oracle, rng):
        for length in (0, 1, 15, 16, 17, 100, 1000):
            key = rng.random_bytes(32)
            nonce = rng.random_bytes(12)
            plaintext = rng.random_bytes(length)
            aad = rng.random_bytes(13)
            assert ours(key).encrypt(nonce, plaintext, aad) == oracle(key).encrypt(
                nonce, plaintext, aad
            )

    def test_decrypt_oracle_ciphertext(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        plaintext = b"attack at dawn"
        sealed = oracle(key).encrypt(nonce, plaintext, b"hdr")
        assert ours(key).decrypt(nonce, sealed, b"hdr") == plaintext

    def test_empty_aad(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        assert ours(key).encrypt(nonce, b"data") == oracle(key).encrypt(
            nonce, b"data", None
        )


@pytest.mark.parametrize(
    "factory", [AESGCM, ChaCha20Poly1305], ids=["gcm", "chacha"]
)
class TestTamperDetection:
    def test_flipped_ciphertext_bit_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = bytearray(factory(key).encrypt(nonce, b"hello world"))
        sealed[0] ^= 0x01
        with pytest.raises(IntegrityError):
            factory(key).decrypt(nonce, bytes(sealed))

    def test_flipped_tag_bit_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = bytearray(factory(key).encrypt(nonce, b"hello world"))
        sealed[-1] ^= 0x80
        with pytest.raises(IntegrityError):
            factory(key).decrypt(nonce, bytes(sealed))

    def test_wrong_aad_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = factory(key).encrypt(nonce, b"payload", b"aad-one")
        with pytest.raises(IntegrityError):
            factory(key).decrypt(nonce, sealed, b"aad-two")

    def test_wrong_nonce_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        sealed = factory(key).encrypt(b"\x01" * 12, b"payload")
        with pytest.raises(IntegrityError):
            factory(key).decrypt(b"\x02" * 12, sealed)

    def test_wrong_key_rejected(self, factory, rng):
        nonce = rng.random_bytes(12)
        sealed = factory(rng.random_bytes(32)).encrypt(nonce, b"payload")
        with pytest.raises(IntegrityError):
            factory(rng.random_bytes(32)).decrypt(nonce, sealed)

    def test_truncated_input_rejected(self, factory, rng):
        with pytest.raises(IntegrityError):
            factory(rng.random_bytes(32)).decrypt(rng.random_bytes(12), b"short")


class TestGcmSpecifics:
    def test_bad_nonce_length(self, rng):
        gcm = AESGCM(rng.random_bytes(32))
        with pytest.raises(CryptoError):
            gcm.encrypt(b"\x00" * 11, b"data")
        with pytest.raises(CryptoError):
            gcm.decrypt(b"\x00" * 16, b"x" * 32)

    @settings(max_examples=30, deadline=None)
    @given(
        plaintext=st.binary(max_size=200),
        aad=st.binary(max_size=40),
    )
    def test_roundtrip_property(self, plaintext, aad):
        key = b"\x11" * 32
        nonce = b"\x22" * 12
        gcm = AESGCM(key)
        assert gcm.decrypt(nonce, gcm.encrypt(nonce, plaintext, aad), aad) == plaintext


class TestChaChaPrimitives:
    def test_keystream_symmetry(self, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        data = rng.random_bytes(300)
        once = chacha20_xor(key, 7, nonce, data)
        assert chacha20_xor(key, 7, nonce, once) == data

    def test_poly1305_key_length(self):
        with pytest.raises(CryptoError):
            poly1305_mac(b"short", b"message")

    def test_poly1305_distinct_messages_distinct_tags(self, rng):
        key = rng.random_bytes(32)
        assert poly1305_mac(key, b"message-a") != poly1305_mac(key, b"message-b")

    @settings(max_examples=30, deadline=None)
    @given(plaintext=st.binary(max_size=300), aad=st.binary(max_size=40))
    def test_roundtrip_property(self, plaintext, aad):
        aead = ChaCha20Poly1305(b"\x33" * 32)
        nonce = b"\x44" * 12
        assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad), aad) == plaintext
