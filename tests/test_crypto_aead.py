"""AEAD tests: AES-GCM and ChaCha20-Poly1305 against the oracle, tamper
detection, and hypothesis round-trip properties."""

import pytest
from cryptography.hazmat.primitives.ciphers.aead import AESGCM as OracleGCM
from cryptography.hazmat.primitives.ciphers.aead import (
    ChaCha20Poly1305 as OracleChaCha,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha import ChaCha20Poly1305, chacha20_xor, poly1305_mac
from repro.crypto.gcm import AESGCM
from repro.errors import CryptoError, IntegrityError

AEADS = [
    ("gcm128", lambda key32: AESGCM(key32[:16]), lambda key32: OracleGCM(key32[:16])),
    ("gcm256", AESGCM, OracleGCM),
    ("chacha", ChaCha20Poly1305, OracleChaCha),
]


@pytest.mark.parametrize("name,ours,oracle", AEADS, ids=[a[0] for a in AEADS])
class TestAgainstOracle:
    def test_encrypt_matches_oracle(self, name, ours, oracle, rng):
        for length in (0, 1, 15, 16, 17, 100, 1000):
            key = rng.random_bytes(32)
            nonce = rng.random_bytes(12)
            plaintext = rng.random_bytes(length)
            aad = rng.random_bytes(13)
            assert ours(key).encrypt(nonce, plaintext, aad) == oracle(key).encrypt(
                nonce, plaintext, aad
            )

    def test_decrypt_oracle_ciphertext(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        plaintext = b"attack at dawn"
        sealed = oracle(key).encrypt(nonce, plaintext, b"hdr")
        assert ours(key).decrypt(nonce, sealed, b"hdr") == plaintext

    def test_empty_aad(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        assert ours(key).encrypt(nonce, b"data") == oracle(key).encrypt(
            nonce, b"data", None
        )


@pytest.mark.parametrize(
    "factory", [AESGCM, ChaCha20Poly1305], ids=["gcm", "chacha"]
)
class TestTamperDetection:
    def test_flipped_ciphertext_bit_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = bytearray(factory(key).encrypt(nonce, b"hello world"))
        sealed[0] ^= 0x01
        with pytest.raises(IntegrityError):
            factory(key).decrypt(nonce, bytes(sealed))

    def test_flipped_tag_bit_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = bytearray(factory(key).encrypt(nonce, b"hello world"))
        sealed[-1] ^= 0x80
        with pytest.raises(IntegrityError):
            factory(key).decrypt(nonce, bytes(sealed))

    def test_wrong_aad_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        sealed = factory(key).encrypt(nonce, b"payload", b"aad-one")
        with pytest.raises(IntegrityError):
            factory(key).decrypt(nonce, sealed, b"aad-two")

    def test_wrong_nonce_rejected(self, factory, rng):
        key = rng.random_bytes(32)
        sealed = factory(key).encrypt(b"\x01" * 12, b"payload")
        with pytest.raises(IntegrityError):
            factory(key).decrypt(b"\x02" * 12, sealed)

    def test_wrong_key_rejected(self, factory, rng):
        nonce = rng.random_bytes(12)
        sealed = factory(rng.random_bytes(32)).encrypt(nonce, b"payload")
        with pytest.raises(IntegrityError):
            factory(rng.random_bytes(32)).decrypt(nonce, sealed)

    def test_truncated_input_rejected(self, factory, rng):
        with pytest.raises(IntegrityError):
            factory(rng.random_bytes(32)).decrypt(rng.random_bytes(12), b"short")


class TestGcmSpecifics:
    def test_bad_nonce_length(self, rng):
        gcm = AESGCM(rng.random_bytes(32))
        with pytest.raises(CryptoError):
            gcm.encrypt(b"\x00" * 11, b"data")
        with pytest.raises(CryptoError):
            gcm.decrypt(b"\x00" * 16, b"x" * 32)

    @settings(max_examples=30, deadline=None)
    @given(
        plaintext=st.binary(max_size=200),
        aad=st.binary(max_size=40),
    )
    def test_roundtrip_property(self, plaintext, aad):
        key = b"\x11" * 32
        nonce = b"\x22" * 12
        gcm = AESGCM(key)
        assert gcm.decrypt(nonce, gcm.encrypt(nonce, plaintext, aad), aad) == plaintext


def _h(s: str) -> bytes:
    return bytes.fromhex(s)


# NIST SP 800-38D validation vectors (the McGrew-Viega GCM test cases) and
# the RFC 8439 §2.8.2 ChaCha20-Poly1305 example. Each expected value is the
# published ciphertext||tag, re-verified against the `cryptography` oracle
# when these tests were written.
_GCM_KEY = _h("feffe9928665731c6d6a8f9467308308")
_GCM_IV = _h("cafebabefacedbaddecaf888")
_GCM_PT = _h(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
_GCM_AAD = _h("feedfacedeadbeeffeedfacedeadbeefabaddad2")

_KAT_VECTORS = [
    # (id, cls, key, nonce, plaintext, aad, expected ct||tag)
    (
        "gcm-tc1-empty-pt-empty-aad", AESGCM,
        bytes(16), bytes(12), b"", b"",
        _h("58e2fccefa7e3061367f1d57a4e7455a"),
    ),
    (
        "gcm-tc2-one-block", AESGCM,
        bytes(16), bytes(12), bytes(16), b"",
        _h("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"),
    ),
    (
        "gcm-tc3-four-blocks", AESGCM,  # exact multi-block boundary, empty AAD
        _GCM_KEY, _GCM_IV, _GCM_PT, b"",
        _h(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4"
        ),
    ),
    (
        "gcm-tc4-partial-block-with-aad", AESGCM,
        _GCM_KEY, _GCM_IV, _GCM_PT[:60], _GCM_AAD,
        _h(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47"
        ),
    ),
    (
        "gcm-tc16-aes256-with-aad", AESGCM,
        _GCM_KEY + _GCM_KEY, _GCM_IV, _GCM_PT[:60], _GCM_AAD,
        _h(
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
            "76fc6ece0f4e1768cddf8853bb2d551b"
        ),
    ),
    (
        "chacha-rfc8439-sunscreen", ChaCha20Poly1305,
        bytes(range(0x80, 0xA0)),
        _h("070000004041424344454647"),
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it.",
        _h("50515253c0c1c2c3c4c5c6c7"),
        _h(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116"
            "1ae10b594f09e26a7e902ecbd0600691"
        ),
    ),
]


@pytest.mark.parametrize(
    "cls,key,nonce,plaintext,aad,expected",
    [v[1:] for v in _KAT_VECTORS],
    ids=[v[0] for v in _KAT_VECTORS],
)
class TestKnownAnswerVectors:
    def test_seal_matches_published_vector(
        self, cls, key, nonce, plaintext, aad, expected
    ):
        assert cls(key).encrypt(nonce, plaintext, aad) == expected

    def test_open_published_vector(self, cls, key, nonce, plaintext, aad, expected):
        assert cls(key).decrypt(nonce, expected, aad) == plaintext


# Lengths chosen to cross every fast-path threshold: the 16-block bitsliced
# CTR cutover (256 bytes), the 512-byte aggregated-GHASH cutover, 4-block
# GHASH group boundaries (64), and exact/off-by-one record block boundaries.
_BOUNDARY_LENGTHS = [0, 1, 15, 16, 17, 63, 64, 255, 256, 257, 511, 512, 513, 4095, 4096]


@pytest.mark.parametrize("name,ours,oracle", AEADS, ids=[a[0] for a in AEADS])
class TestBatchEquivalence:
    def test_seal_many_matches_sequential(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        aead = ours(key)
        items = [
            (rng.random_bytes(12), rng.random_bytes(n), rng.random_bytes(13))
            for n in _BOUNDARY_LENGTHS
        ]
        batched = aead.seal_many(items)
        sequential = [aead.encrypt(n, pt, aad) for n, pt, aad in items]
        assert batched == sequential

    def test_open_many_matches_sequential(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        aead = ours(key)
        items = [
            (nonce, aead.encrypt(nonce, pt, aad), aad)
            for nonce, pt, aad in (
                (rng.random_bytes(12), rng.random_bytes(n), rng.random_bytes(13))
                for n in _BOUNDARY_LENGTHS
            )
        ]
        batched = aead.open_many(items)
        sequential = [aead.decrypt(n, data, aad) for n, data, aad in items]
        assert batched == sequential

    def test_open_many_rejects_tampered_batch(self, name, ours, oracle, rng):
        key = rng.random_bytes(32)
        aead = ours(key)
        nonce = rng.random_bytes(12)
        good = aead.encrypt(nonce, b"fine", b"")
        bad = bytearray(aead.encrypt(nonce, b"evil", b""))
        bad[0] ^= 0x01
        with pytest.raises(IntegrityError):
            aead.open_many([(nonce, good, b""), (nonce, bytes(bad), b"")])

    @settings(max_examples=10, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=0, max_value=4096),
                            min_size=1, max_size=4))
    def test_batch_property_random_lengths(self, name, ours, oracle, lengths):
        aead = ours(b"\x5a" * 32)
        items = [
            (bytes([i]) * 12, bytes([n & 0xFF]) * n, bytes([i, n & 0xFF]))
            for i, n in enumerate(lengths)
        ]
        assert aead.seal_many(items) == [
            aead.encrypt(n, pt, aad) for n, pt, aad in items
        ]


class TestChaChaPrimitives:
    def test_keystream_symmetry(self, rng):
        key = rng.random_bytes(32)
        nonce = rng.random_bytes(12)
        data = rng.random_bytes(300)
        once = chacha20_xor(key, 7, nonce, data)
        assert chacha20_xor(key, 7, nonce, once) == data

    def test_poly1305_key_length(self):
        with pytest.raises(CryptoError):
            poly1305_mac(b"short", b"message")

    def test_poly1305_distinct_messages_distinct_tags(self, rng):
        key = rng.random_bytes(32)
        assert poly1305_mac(key, b"message-a") != poly1305_mac(key, b"message-b")

    @settings(max_examples=30, deadline=None)
    @given(plaintext=st.binary(max_size=300), aad=st.binary(max_size=40))
    def test_roundtrip_property(self, plaintext, aad):
        aead = ChaCha20Poly1305(b"\x33" * 32)
        nonce = b"\x44" * 12
        assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad), aad) == plaintext
